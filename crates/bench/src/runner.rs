//! Memoized run-cache and deterministic parallel executor.
//!
//! The paper's artifacts overlap heavily: Table II, Figures 5–8, and the
//! ablation all re-simulate the same (kernel, system config, exec mode)
//! points. A [`Runner`] memoizes [`RunResult`]s under a canonical
//! [`RunKey`], so each unique simulation point executes exactly once no
//! matter how many reports ask for it.
//!
//! Reports run in two passes (see [`run_reports`]):
//!
//! 1. **Collect** — every report renders once against a collecting runner
//!    that records the deduplicated job list and returns placeholder
//!    results. Report control flow never branches on simulated values when
//!    choosing *which* runs to request, so the collected job set is exactly
//!    the set the real render needs.
//! 2. **Execute + render** — the unique jobs are simulated (fanned out
//!    over [`std::thread::available_parallelism`] workers on the
//!    work-stealing pool in [`crate::sched`], or serially with
//!    `XLOOPS_BENCH_SERIAL=1`), then every report renders again from the
//!    warm cache.
//!
//! Each job builds a fresh [`xloops_sim::System`] and the simulator is deterministic,
//! so results are independent of worker scheduling: parallel and serial
//! runs produce byte-identical artifacts.
//!
//! Every execution is hardened: a panicking simulation point (bad kernel,
//! simulator bug, exceeded cycle budget under `XLOOPS_CYCLE_BUDGET`) is
//! caught with [`std::panic::catch_unwind`], quarantined into the runner's
//! failure list, and replaced by a placeholder [`RunResult`] carrying the
//! diagnosis in [`RunResult::error`] — one sick point cannot take down a
//! whole artifact regeneration, and `--bin all` reports the quarantined
//! set (and exits nonzero) instead of dying mid-render.
//!
//! The memo cache is per-process by design; durability is layered on
//! top, not in. The drivers in [`crate::store`] consult a
//! [`crate::ResultStore`] at collect time and request only the missed
//! points here, so the runner stays a pure in-memory dedup engine and the
//! on-disk format never learns about [`RunKey`]s (store entries are keyed
//! by manifest fingerprint + point index + options instead).
//!
//! A runner carries a [`RunOptions`] value fixing its supervision policy
//! and executor knobs (serial fill, worker count, profiling). The
//! convenience constructors [`Runner::new`] / [`Runner::collecting`] read
//! [`RunOptions::from_env`] once at construction; [`Runner::with_options`]
//! / [`Runner::collecting_with`] take the options explicitly, which is how
//! the manifest sweep driver records exactly what produced a shard.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use xloops_asm::{lower_gp, Program};
use xloops_kernels::{by_name, Kernel};
use xloops_sim::{
    ConfigKey, ExecMode, RunOptions, SampleSpec, SimError, SystemConfig, SystemStats,
};

use crate::{try_run_program, RunResult};

/// Canonical identity of one simulation point.
///
/// Baseline runs are normalized before keying: `run_gp_baseline` strips
/// the LPSU and forces [`ExecMode::Traditional`], so a baseline requested
/// against `ooo/2+x` and one requested against plain `ooo/2` share a key
/// (and a simulation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Kernel name (resolvable via [`xloops_kernels::by_name`]).
    pub kernel: &'static str,
    /// Stable identity of the system configuration.
    pub config: ConfigKey,
    /// Execution mode.
    pub mode: ExecMode,
    /// Whether the program is first lowered to the GP ISA (baselines).
    pub gp_lowered: bool,
    /// The sampling spec the point runs under (`None` = every cycle in
    /// detail). Part of the identity: a sampled run and a full run of the
    /// same point produce different (estimated vs exact) cycle counts.
    pub sample: Option<SampleSpec>,
}

/// One pending simulation: its key plus the full config (the key's energy
/// fingerprint is not invertible, so the table rides along).
#[derive(Clone, Copy, Debug)]
struct Job {
    key: RunKey,
    config: SystemConfig,
}

/// Cache traffic counters (all monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache requests while live (collect-phase requests are not counted).
    pub lookups: u64,
    /// Requests served from the cache.
    pub hits: u64,
    /// Simulations actually executed (prefill + live misses).
    pub sims: u64,
}

/// One quarantined simulation point: its identity plus the panic message
/// (or simulation-error diagnosis) that took it down.
#[derive(Clone, Debug)]
pub struct RunFailure {
    /// Identity of the failed point.
    pub key: RunKey,
    /// The diagnosis (panic payload or rendered simulation error).
    pub message: String,
    /// The typed error class when the failure was a [`SimError`] rather
    /// than a panic — kept so downstream reporting (job states, error
    /// documents) preserves the class and its exit code.
    pub sim: Option<SimError>,
}

/// Result of [`Runner::prefill`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PrefillInfo {
    /// Unique simulation points executed.
    pub unique_points: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Whether the serial escape hatch was active.
    pub serial: bool,
}

/// Memoizing simulation runner. See the module docs for the two-pass
/// protocol; a runner built with [`Runner::new`] can also be used directly
/// as a lazy memo cache (misses simulate inline).
pub struct Runner {
    options: RunOptions,
    collecting: AtomicBool,
    pending: Mutex<(Vec<Job>, HashSet<RunKey>)>,
    cache: Mutex<HashMap<RunKey, RunResult>>,
    /// GP-lowered programs, cached per kernel (all baseline configs of a
    /// kernel share one lowering).
    gp_programs: Mutex<HashMap<&'static str, Arc<Program>>>,
    failures: Mutex<Vec<RunFailure>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    sims: AtomicU64,
}

impl Default for Runner {
    fn default() -> Runner {
        Runner::new()
    }
}

impl Runner {
    /// A live runner with explicit options: requests are served from the
    /// cache, misses simulate inline and are memoized.
    pub fn with_options(options: RunOptions) -> Runner {
        Runner {
            options,
            collecting: AtomicBool::new(false),
            pending: Mutex::new((Vec::new(), HashSet::new())),
            cache: Mutex::new(HashMap::new()),
            gp_programs: Mutex::new(HashMap::new()),
            failures: Mutex::new(Vec::new()),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            sims: AtomicU64::new(0),
        }
    }

    /// [`Runner::with_options`] with options read from the environment.
    pub fn new() -> Runner {
        Runner::with_options(RunOptions::from_env())
    }

    /// A collecting runner with explicit options: requests record jobs and
    /// return placeholders until [`Runner::prefill`] flips it live.
    pub fn collecting_with(options: RunOptions) -> Runner {
        let r = Runner::with_options(options);
        r.collecting.store(true, Ordering::Relaxed);
        r
    }

    /// [`Runner::collecting_with`] with options read from the environment.
    pub fn collecting() -> Runner {
        Runner::collecting_with(RunOptions::from_env())
    }

    /// The options this runner was built with.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Requests a kernel run (memoized [`crate::run_kernel`]).
    pub fn run(&self, kernel: &Kernel, config: SystemConfig, mode: ExecMode) -> RunResult {
        self.run_sampled(kernel, config, mode, None)
    }

    /// Requests a kernel run with a per-point sampling override; `None`
    /// falls back to the runner-wide [`RunOptions::sample`]. The effective
    /// spec is part of the cache key, so a sampled point and the full run
    /// of the same configuration never alias.
    pub fn run_sampled(
        &self,
        kernel: &Kernel,
        config: SystemConfig,
        mode: ExecMode,
        sample: Option<SampleSpec>,
    ) -> RunResult {
        let sample = sample.or(self.options.sample);
        let key =
            RunKey { kernel: kernel.name, config: config.key(), mode, gp_lowered: false, sample };
        self.request(Job { key, config })
    }

    /// Requests a GP-ISA baseline run (memoized [`crate::run_gp_baseline`]).
    pub fn baseline(&self, kernel: &Kernel, config: SystemConfig) -> RunResult {
        // Normalize exactly as run_gp_baseline executes: no LPSU, lowered
        // program, traditional mode.
        let config = SystemConfig { lpsu: None, ..config };
        let key = RunKey {
            kernel: kernel.name,
            config: config.key(),
            mode: ExecMode::Traditional,
            gp_lowered: true,
            sample: self.options.sample,
        };
        self.request(Job { key, config })
    }

    fn request(&self, job: Job) -> RunResult {
        if self.collecting.load(Ordering::Relaxed) {
            let (jobs, seen) = &mut *self.pending.lock().unwrap();
            if seen.insert(job.key) {
                jobs.push(job);
            }
            // Placeholder; reports guard divisions, and no report chooses
            // *which* runs to request based on simulated values.
            return RunResult {
                cycles: 1,
                energy_nj: 1.0,
                stats: SystemStats::default(),
                error: None,
            };
        }
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(hit) = self.cache.lock().unwrap().get(&job.key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        let result = self.execute_caught(&job);
        self.sims.fetch_add(1, Ordering::Relaxed);
        self.cache.lock().unwrap().insert(job.key, result.clone());
        result
    }

    /// [`Runner::try_execute`] behind a panic firewall: a point that
    /// panics — or surfaces a typed [`SimError`] — is quarantined into the
    /// failure list and yields a placeholder result carrying the
    /// diagnosis, so the rest of the job list still runs. A typed error
    /// keeps its class on the [`RunFailure`]; the diagnosis message is the
    /// same line the panic path has always produced for it.
    fn execute_caught(&self, job: &Job) -> RunResult {
        let (message, sim) = match catch_unwind(AssertUnwindSafe(|| self.try_execute(job))) {
            Ok(Ok(result)) => return result,
            Ok(Err(e)) => {
                let what = if job.key.gp_lowered { "baseline" } else { "run" };
                (format!("{} {what} on {}: {e}", job.key.kernel, job.config.name()), Some(e))
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                (message, None)
            }
        };
        self.failures.lock().unwrap().push(RunFailure {
            key: job.key,
            message: message.clone(),
            sim,
        });
        RunResult { cycles: 1, energy_nj: 1.0, stats: SystemStats::default(), error: Some(message) }
    }

    /// Simulates one job on a fresh system, surfacing simulation failures
    /// as the typed [`SimError`]. The key's effective sampling spec
    /// (per-point override already folded in) replaces the runner-wide
    /// one, so `run_program` sees exactly what the key promises.
    fn try_execute(&self, job: &Job) -> Result<RunResult, SimError> {
        let kernel = by_name(job.key.kernel)
            .unwrap_or_else(|| panic!("unknown kernel in run cache: {}", job.key.kernel));
        let options = RunOptions { sample: job.key.sample, ..self.options.clone() };
        if job.key.gp_lowered {
            let program = self.gp_program(kernel);
            try_run_program(
                kernel,
                &program,
                job.config,
                ExecMode::Traditional,
                &options,
                "baseline",
            )
        } else {
            try_run_program(kernel, &kernel.program, job.config, job.key.mode, &options, "run")
        }
    }

    /// The kernel's GP-lowered program, lowered at most once per kernel.
    fn gp_program(&self, kernel: &Kernel) -> Arc<Program> {
        let mut progs = self.gp_programs.lock().unwrap();
        Arc::clone(progs.entry(kernel.name).or_insert_with(|| Arc::new(lower_gp(&kernel.program))))
    }

    /// Executes every collected job exactly once and flips the runner
    /// live. Jobs fan out over worker threads unless the runner's options
    /// say [`RunOptions::serial`] (or only one hardware thread is
    /// available); either way the cache ends up identical, because each
    /// job simulates a fresh deterministic system.
    pub fn prefill(&self) -> PrefillInfo {
        let workers = if self.options.serial {
            1
        } else if let Some(n) = self.options.threads {
            n
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        };
        let mut info = self.prefill_with(workers);
        info.serial = self.options.serial;
        info
    }

    /// [`Runner::prefill`] with an explicit worker-thread count (ignores
    /// the environment). Exposed so determinism tests can pit a parallel
    /// fill against a serial one directly. The fan-out itself lives in
    /// [`crate::sched::run_jobs`] — the one worker pool in the workspace —
    /// this method only supplies the per-job closure (execute behind the
    /// panic firewall, time under `--profile`) and folds the results into
    /// the cache.
    pub fn prefill_with(&self, workers: usize) -> PrefillInfo {
        let jobs = {
            let (jobs, _) = &mut *self.pending.lock().unwrap();
            std::mem::take(jobs)
        };
        self.collecting.store(false, Ordering::Relaxed);
        let workers = workers.min(jobs.len().max(1));

        // Wall-clock profiling is only meaningful serially (parallel
        // timings measure contention, not the simulator).
        let profile = self.options.profile && workers <= 1;
        let timings = Mutex::new(Vec::new());
        let results = crate::sched::run_jobs(&jobs, workers, |_, job| {
            let t = std::time::Instant::now();
            let result = self.execute_caught(job);
            if profile {
                timings.lock().unwrap().push((t.elapsed(), job.key));
            }
            self.sims.fetch_add(1, Ordering::Relaxed);
            result
        });
        let mut cache = self.cache.lock().unwrap();
        for (job, result) in jobs.iter().zip(results) {
            cache.insert(job.key, result);
        }
        drop(cache);

        if profile {
            let mut timings = timings.into_inner().unwrap();
            timings.sort_by_key(|&(d, _)| std::cmp::Reverse(d));
            eprintln!("[profile] slowest simulation points:");
            for (d, key) in timings.iter().take(20) {
                eprintln!(
                    "[profile] {:8.1} ms  {} {:?} gp={}",
                    d.as_secs_f64() * 1e3,
                    key.kernel,
                    key.mode,
                    key.gp_lowered,
                );
            }
        }

        PrefillInfo { unique_points: jobs.len(), workers, serial: false }
    }

    /// Number of distinct keys currently cached.
    pub fn cached_points(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// The quarantined simulation points (empty on a healthy run).
    pub fn failures(&self) -> Vec<RunFailure> {
        self.failures.lock().unwrap().clone()
    }

    /// Snapshot of the traffic counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            sims: self.sims.load(Ordering::Relaxed),
        }
    }
}

/// Runs a report generator with the full two-pass protocol: collect the
/// job set, execute each unique point exactly once (in parallel unless
/// `XLOOPS_BENCH_SERIAL=1`), then render from the warm cache. Returns the
/// rendered output and the runner (for cache statistics).
pub fn run_reports<R>(f: impl Fn(&Runner) -> R) -> (R, Runner, PrefillInfo) {
    let runner = Runner::collecting();
    let _ = f(&runner);
    let info = runner.prefill();
    let out = f(&runner);
    (out, runner, info)
}

/// [`run_reports`] for a single artifact binary: just the rendered text.
pub fn render_artifact(f: impl Fn(&Runner) -> String) -> String {
    run_reports(f).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use xloops_lpsu::LpsuConfig;

    #[test]
    fn cache_hit_returns_identical_result() {
        let k = by_name("huffman-ua").expect("kernel exists");
        let runner = Runner::new();
        let first = runner.run(k, SystemConfig::io_x(), ExecMode::Specialized);
        let second = runner.run(k, SystemConfig::io_x(), ExecMode::Specialized);
        assert_eq!(first.cycles, second.cycles);
        assert_eq!(first.energy_nj, second.energy_nj);
        assert_eq!(first.stats, second.stats);
        let s = runner.cache_stats();
        assert_eq!((s.lookups, s.hits, s.sims), (2, 1, 1));
    }

    #[test]
    fn cached_result_matches_uncached_harness_calls() {
        let k = by_name("huffman-ua").expect("kernel exists");
        let runner = Runner::new();
        let spec = runner.run(k, SystemConfig::io_x(), ExecMode::Specialized);
        let base = runner.baseline(k, SystemConfig::io_x());
        assert_eq!(
            spec.cycles,
            crate::run_kernel(k, SystemConfig::io_x(), ExecMode::Specialized).cycles
        );
        assert_eq!(base.cycles, crate::run_gp_baseline(k, SystemConfig::io_x()).cycles);
    }

    #[test]
    fn baselines_normalize_away_the_lpsu() {
        let k = by_name("huffman-ua").expect("kernel exists");
        let runner = Runner::new();
        let with_lpsu = runner.baseline(k, SystemConfig::io_x());
        let without = runner.baseline(k, SystemConfig::io());
        // Same canonical point: the second request must be a cache hit.
        assert_eq!(with_lpsu.cycles, without.cycles);
        let s = runner.cache_stats();
        assert_eq!((s.lookups, s.hits, s.sims), (2, 1, 1));
    }

    #[test]
    fn run_keys_distinguish_all_experiment_configs() {
        // Every system configuration any report sweeps must map to its own
        // RunKey, else the cache would alias distinct design points.
        // fig9's `x4` variant (plain default4) IS ooo4_x — the cache is
        // meant to share that point, so it is not in this distinct list.
        assert_eq!(
            SystemConfig::ooo4_x().with_lpsu(LpsuConfig::default4()).key(),
            SystemConfig::ooo4_x().key(),
        );
        let fig9_lpsus = [
            LpsuConfig::default4().with_multithreading(),
            LpsuConfig::default4().with_lanes(8),
            LpsuConfig::default4().with_lanes(8).with_double_resources(),
            LpsuConfig::default4().with_lanes(8).with_double_resources().with_big_lsq(),
            // Ablation variants.
            LpsuConfig::default4().with_cross_lane_forwarding(),
            LpsuConfig::default4().with_cib_latency(2),
            LpsuConfig::default4().with_cib_latency(4),
        ];
        let mut configs: Vec<SystemConfig> = vec![
            SystemConfig::io(),
            SystemConfig::ooo2(),
            SystemConfig::ooo4(),
            SystemConfig::io_x(),
            SystemConfig::ooo2_x(),
            SystemConfig::ooo4_x(),
            SystemConfig::io().with_energy(xloops_energy::EnergyTable::vlsi40()),
            SystemConfig::io_x().with_energy(xloops_energy::EnergyTable::vlsi40()),
        ];
        configs.extend(fig9_lpsus.iter().map(|l| SystemConfig::ooo4_x().with_lpsu(*l)));
        configs.extend(
            [
                LpsuConfig::default4().with_cross_lane_forwarding(),
                LpsuConfig::default4().with_cib_latency(2),
            ]
            .iter()
            .map(|l| SystemConfig::ooo2_x().with_lpsu(*l)),
        );
        let mut keys = HashSet::new();
        for c in &configs {
            let key = RunKey {
                kernel: "k",
                config: c.key(),
                mode: ExecMode::Specialized,
                gp_lowered: false,
                sample: None,
            };
            assert!(keys.insert(key), "config aliased another: {}", c.name());
        }
        // Mode, lowering flag, and sampling spec are part of the identity too.
        let c = SystemConfig::io_x();
        let base = RunKey {
            kernel: "k",
            config: c.key(),
            mode: ExecMode::Specialized,
            gp_lowered: false,
            sample: None,
        };
        assert_ne!(base, RunKey { mode: ExecMode::Adaptive, ..base });
        assert_ne!(base, RunKey { mode: ExecMode::Traditional, ..base });
        assert_ne!(base, RunKey { gp_lowered: true, ..base });
        assert_ne!(base, RunKey { kernel: "other", ..base });
        let spec = SampleSpec::new(10_000, 2_000, 50_000).unwrap();
        assert_ne!(base, RunKey { sample: Some(spec), ..base });
    }

    #[test]
    fn sampled_and_full_runs_occupy_distinct_cache_slots() {
        let k = by_name("huffman-ua").expect("kernel exists");
        let runner = Runner::new();
        let full = runner.run(k, SystemConfig::io_x(), ExecMode::Specialized);
        let spec = SampleSpec::new(500, 100, 500).unwrap();
        let sampled =
            runner.run_sampled(k, SystemConfig::io_x(), ExecMode::Specialized, Some(spec));
        // Two distinct simulations, not one cache hit.
        let s = runner.cache_stats();
        assert_eq!((s.lookups, s.hits, s.sims), (2, 0, 2));
        // Only the sampled run reports sampling statistics, and its
        // extrapolated cycle count tracks the exact one.
        assert!(full.stats.sampling.is_none());
        let samp = sampled.stats.sampling.as_ref().expect("sampling stats attached");
        assert!(samp.intervals > 0);
        let err = (sampled.cycles as f64 - full.cycles as f64).abs() / full.cycles as f64;
        assert!(err < 0.05, "sampled {} vs full {} ({err:.3})", sampled.cycles, full.cycles);
        // A repeated sampled request is served from the cache.
        let again = runner.run_sampled(k, SystemConfig::io_x(), ExecMode::Specialized, Some(spec));
        assert_eq!(again.cycles, sampled.cycles);
        assert_eq!(runner.cache_stats().hits, 1);
    }

    #[test]
    fn panicking_point_is_quarantined_not_fatal() {
        // An unknown kernel name panics inside `execute`; the hardened
        // executor must quarantine it instead of unwinding the harness.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // quiet the expected panic
        let runner = Runner::new();
        let key = RunKey {
            kernel: "no-such-kernel",
            config: SystemConfig::io().key(),
            mode: ExecMode::Traditional,
            gp_lowered: false,
            sample: None,
        };
        let r = runner.execute_caught(&Job { key, config: SystemConfig::io() });
        std::panic::set_hook(hook);
        assert!(r.error.as_deref().is_some_and(|m| m.contains("no-such-kernel")), "{r:?}");
        let failures = runner.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].key, key);
        assert!(failures[0].message.contains("no-such-kernel"));
    }

    #[test]
    fn parallel_and_serial_fills_render_byte_identical_reports() {
        // A miniature multi-config report over three kernels, exercising
        // baselines, both LPSU modes, and a design-space variant.
        let report = |r: &Runner| {
            let mut out = String::new();
            for name in ["rgb2cmyk-uc", "dither-or", "ksack-sm-om"] {
                let k = by_name(name).expect("kernel exists");
                let base = r.baseline(k, SystemConfig::ooo2());
                let s = r.run(k, SystemConfig::ooo2_x(), ExecMode::Specialized);
                let a = r.run(k, SystemConfig::ooo2_x(), ExecMode::Adaptive);
                let x8 = SystemConfig::ooo2_x().with_lpsu(LpsuConfig::default4().with_lanes(8));
                let w = r.run(k, x8, ExecMode::Specialized);
                out.push_str(&format!(
                    "{name} {} {} {} {} {:.3}\n",
                    base.cycles, s.cycles, a.cycles, w.cycles, s.energy_nj
                ));
            }
            out
        };

        let fill = |workers: usize| {
            let runner = Runner::collecting();
            let _ = report(&runner);
            let info = runner.prefill_with(workers);
            (report(&runner), info)
        };
        let (serial_text, serial_info) = fill(1);
        let (parallel_text, parallel_info) = fill(4);
        assert_eq!(serial_info.workers, 1);
        assert_eq!(parallel_info.workers, 4);
        assert_eq!(serial_info.unique_points, parallel_info.unique_points);
        assert_eq!(serial_text, parallel_text, "parallel fill must be byte-identical to serial");
    }

    #[test]
    fn two_pass_protocol_simulates_each_point_once() {
        let k = by_name("huffman-ua").expect("kernel exists");
        let report = |r: &Runner| {
            // Ask for the same points repeatedly, like overlapping reports.
            let base = r.baseline(k, SystemConfig::io());
            let s1 = r.run(k, SystemConfig::io_x(), ExecMode::Specialized);
            let s2 = r.run(k, SystemConfig::io_x(), ExecMode::Specialized);
            let base2 = r.baseline(k, SystemConfig::io_x());
            format!("{} {} {} {}", base.cycles, s1.cycles, s2.cycles, base2.cycles)
        };
        let (out, runner, info) = run_reports(report);
        // Two unique points: the io baseline and the specialized run.
        assert_eq!(info.unique_points, 2);
        let s = runner.cache_stats();
        assert_eq!(s.sims, 2, "each unique point simulated exactly once");
        assert_eq!(s.lookups, 4);
        assert_eq!(s.hits, 4, "render pass is fully cache-served");
        // And the rendered text matches a direct (uncached) computation.
        let direct_base = crate::run_gp_baseline(k, SystemConfig::io());
        let direct_spec = crate::run_kernel(k, SystemConfig::io_x(), ExecMode::Specialized);
        assert_eq!(
            out,
            format!(
                "{} {} {} {}",
                direct_base.cycles, direct_spec.cycles, direct_spec.cycles, direct_base.cycles
            )
        );
    }
}
