//! The service layer: a long-running sweep daemon over the scheduler.
//!
//! `xloops serve` hosts the [`crate::sched::Scheduler`] behind a
//! newline-delimited-JSON protocol on a Unix socket (the path comes from
//! `--sock` or `XLOOPS_SOCK`), so repeated sweeps amortize one warm
//! durable store across many client invocations. `xloops submit` and
//! `xloops status` are thin clients — one request line out, one response
//! line back — and the CLI's synchronous sweep mode is the same scheduler
//! called in-process, so the daemon adds no second orchestration path.
//!
//! ## Wire protocol
//!
//! One request per line, any number of requests per connection. Every
//! request gets exactly one *final* response line; a `submit` with
//! `wait:true` additionally streams keep-alive progress lines (marked
//! `"hb":true`) every couple of seconds until the sweep finishes, so
//! clients with read timeouts can tell a working daemon from a hung one:
//!
//! ```text
//! request  = object "\n"
//! object   = {"cmd":"ping"}
//!          | {"cmd":"submit","manifest":SPEC}          fire and forget
//!          | {"cmd":"submit","manifest":SPEC,"wait":true}
//!          | {"cmd":"status"}                          list all jobs
//!          | {"cmd":"status","job":FINGERPRINT}
//!          | {"cmd":"shutdown"}
//! response = {"ok":true, ...} | {"ok":false,"error":{"message":M,"exit_code":2}}
//! ```
//!
//! `SPEC` is a full experiment-manifest document
//! ([`ExperimentSpec::to_json_value`]) — the client embeds the manifest
//! file, so the daemon never needs the client's filesystem. A sweep's job
//! id **is** the manifest fingerprint: submitting the manifest that is
//! already queued/running *attaches* to it (both `--wait` clients get the
//! artifact), and `status` works from any client that knows the
//! fingerprint.
//!
//! Malformed input — non-UTF-8 bytes, broken JSON, schema violations, an
//! invalid manifest — produces an `ok:false` response with the canonical
//! [`error_doc`] shape and exit code 2 (the CLI's usage-error code), never
//! a daemon panic; the protocol proptests feed byte soup straight into
//! [`handle_line`] to pin that.
//!
//! ## Crash safety
//!
//! The daemon holds no result state the store doesn't: each sweep runs
//! through the scheduler against the daemon's store directory, so a
//! `kill -9` mid-sweep loses only in-flight points. Resubmitting after a
//! restart re-derives the job list and finds every completed point as a
//! store hit — resume is a property of the layering, not a recovery
//! subsystem.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use xloops_sim::{error_doc, RunOptions};
use xloops_stats::JsonValue;

use crate::job::JobState;
use crate::manifest::{render_spec, ExperimentSpec, PointResult};
use crate::sched::{Scheduler, SweepProgress};
use crate::store::ResultStore;

/// Cadence of the keep-alive progress lines a waiting `submit` streams.
const WAIT_HEARTBEAT: Duration = Duration::from_secs(2);

/// Resolves the daemon socket path: an explicit `--sock` value wins,
/// otherwise `XLOOPS_SOCK`.
pub fn sock_from(flag: Option<PathBuf>) -> Option<PathBuf> {
    flag.or_else(|| std::env::var("XLOOPS_SOCK").ok().filter(|s| !s.is_empty()).map(PathBuf::from))
}

/// Everything a finished sweep produced, kept until the daemon exits so
/// late `status` queries (and duplicate submits) answer instantly.
#[derive(Clone, Debug)]
pub struct SweepDone {
    /// The rendered artifact text.
    pub artifact: String,
    /// Total points swept.
    pub total: usize,
    /// Points that ended `Failed` or `Quarantined`.
    pub failed: usize,
    /// The subset of `failed` that ended `Quarantined` (an untyped
    /// diagnosis, e.g. an exhausted worker-retry budget or a panic).
    pub quarantined: usize,
    /// Canonical [`error_doc`] per failed point.
    pub failures: Vec<JsonValue>,
    /// Store hits while sweeping (0 without a store).
    pub store_hits: u64,
    /// Store misses while sweeping (0 without a store).
    pub store_misses: u64,
}

/// A submitted sweep's lifecycle — the sweep-level analogue of
/// [`crate::job::JobState`], with the same wire labels.
#[derive(Clone, Debug)]
pub enum SweepPhase {
    /// Accepted, worker not yet running.
    Queued,
    /// The scheduler is sweeping.
    Running,
    /// Finished; the artifact and failure report.
    Done(Box<SweepDone>),
}

impl SweepPhase {
    fn label(&self) -> &'static str {
        match self {
            SweepPhase::Queued => "queued",
            SweepPhase::Running => "running",
            SweepPhase::Done(_) => "done",
        }
    }
}

/// One submitted sweep: the manifest, its current phase, and the live
/// progress tracker the scheduler ticks while sweeping. `cond` is
/// notified on every phase change so any number of `--wait` clients can
/// block on the same sweep.
pub struct SweepJob {
    id: String,
    spec: ExperimentSpec,
    progress: Arc<SweepProgress>,
    phase: Mutex<SweepPhase>,
    cond: Condvar,
}

impl SweepJob {
    fn set_phase(&self, phase: SweepPhase) {
        *self.phase.lock().unwrap() = phase;
        self.cond.notify_all();
    }

    /// Blocks until the sweep is done, then returns the report.
    pub fn wait_done(&self) -> SweepDone {
        let mut phase = self.phase.lock().unwrap();
        loop {
            if let SweepPhase::Done(done) = &*phase {
                return (**done).clone();
            }
            phase = self.cond.wait(phase).unwrap();
        }
    }

    /// Blocks up to `timeout` for the sweep to finish; `None` means it is
    /// still going (time to stream a keep-alive line, not to give up).
    pub fn wait_done_for(&self, timeout: Duration) -> Option<SweepDone> {
        let deadline = Instant::now() + timeout;
        let mut phase = self.phase.lock().unwrap();
        loop {
            if let SweepPhase::Done(done) = &*phase {
                return Some((**done).clone());
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            phase = self.cond.wait_timeout(phase, left).unwrap().0;
        }
    }
}

/// Shared daemon state: the sweep registry plus everything a worker needs
/// to run one (store directory, run options).
pub struct ServiceState {
    store_dir: Option<PathBuf>,
    options: RunOptions,
    sweeps: Mutex<HashMap<String, Arc<SweepJob>>>,
    shutdown: AtomicBool,
    sock: PathBuf,
}

impl ServiceState {
    /// Fresh state for a daemon listening on `sock`, sweeping under
    /// `options` against the store at `store_dir` (when given).
    pub fn new(sock: PathBuf, store_dir: Option<PathBuf>, options: RunOptions) -> ServiceState {
        ServiceState {
            store_dir,
            options,
            sweeps: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            sock,
        }
    }
}

/// One response line plus whether the daemon should stop accepting.
pub struct Response {
    /// The JSON document to write back (one line).
    pub body: JsonValue,
    /// `true` after a `shutdown` command.
    pub shutdown: bool,
    /// Set on a waiting `submit`: the connection loop streams keep-alive
    /// progress lines for this sweep and writes its final report as the
    /// response, instead of `body`.
    pub wait: Option<Arc<SweepJob>>,
}

fn ok_fields(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    let mut all = vec![("ok".to_string(), JsonValue::Bool(true))];
    all.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    JsonValue::Object(all)
}

fn refuse(message: String) -> Response {
    let body =
        JsonValue::object(vec![("ok", JsonValue::Bool(false)), ("error", error_doc(&message, 2))]);
    Response { body, shutdown: false, wait: None }
}

/// The sweep's current phase as a response document, with the live
/// queued/running/done progress counts alongside. A done sweep reports
/// its artifact, counts, per-point [`error_doc`]s, and store traffic.
fn phase_doc(job_id: &str, phase: &SweepPhase, progress: &SweepProgress) -> JsonValue {
    let mut fields = vec![
        ("job", JsonValue::Str(job_id.to_string())),
        ("state", JsonValue::Str(phase.label().to_string())),
        ("progress", progress.to_json_value()),
    ];
    if let SweepPhase::Done(done) = phase {
        fields.push(("points", JsonValue::UInt(done.total as u64)));
        fields.push(("failed", JsonValue::UInt(done.failed as u64)));
        fields.push(("quarantined", JsonValue::UInt(done.quarantined as u64)));
        fields.push(("errors", JsonValue::Array(done.failures.clone())));
        fields.push((
            "store",
            JsonValue::object(vec![
                ("hits", JsonValue::UInt(done.store_hits)),
                ("misses", JsonValue::UInt(done.store_misses)),
            ]),
        ));
        fields.push(("artifact", JsonValue::Str(done.artifact.clone())));
    }
    ok_fields(fields)
}

/// One row of the job listing a bare `status` returns: identity, phase,
/// live progress, and — once done — the terminal point counts.
fn listing_doc(job: &SweepJob) -> JsonValue {
    let phase = job.phase.lock().unwrap();
    let mut fields = vec![
        ("job".to_string(), JsonValue::Str(job.id.clone())),
        ("state".to_string(), JsonValue::Str(phase.label().to_string())),
        ("points".to_string(), JsonValue::UInt(job.spec.points.len() as u64)),
        ("progress".to_string(), job.progress.to_json_value()),
    ];
    if let SweepPhase::Done(done) = &*phase {
        fields.push(("done".to_string(), JsonValue::UInt((done.total - done.failed) as u64)));
        fields.push(("failed".to_string(), JsonValue::UInt(done.failed as u64)));
        fields.push(("quarantined".to_string(), JsonValue::UInt(done.quarantined as u64)));
    }
    JsonValue::Object(fields)
}

/// Handles one request line. This is the daemon's entire parse surface
/// and it must never panic: every malformed input path — bad UTF-8, bad
/// JSON, missing fields, invalid manifests — returns an `ok:false`
/// response instead (pinned by the protocol proptests).
pub fn handle_line(state: &Arc<ServiceState>, line: &[u8]) -> Response {
    let text = match std::str::from_utf8(line) {
        Ok(t) => t.trim(),
        Err(e) => return refuse(format!("request is not UTF-8: {e}")),
    };
    if text.is_empty() {
        return refuse("empty request line".to_string());
    }
    let doc = match JsonValue::parse(text) {
        Ok(d) => d,
        Err(e) => return refuse(format!("request is not JSON: {e}")),
    };
    let Some(cmd) = doc.get("cmd").and_then(JsonValue::as_str) else {
        return refuse("request has no string `cmd` field".to_string());
    };
    match cmd {
        "ping" => Response {
            body: ok_fields(vec![("pong", JsonValue::Bool(true))]),
            shutdown: false,
            wait: None,
        },
        "shutdown" => Response {
            body: ok_fields(vec![("shutdown", JsonValue::Bool(true))]),
            shutdown: true,
            wait: None,
        },
        "status" => {
            // A malformed `job` value (present but not a string) is a
            // schema violation; an *absent* or empty one asks for the
            // listing of every known job.
            let job_id = match doc.get("job") {
                Some(v) => match v.as_str() {
                    Some(id) => id,
                    None => return refuse("status `job` field must be a string".to_string()),
                },
                None => "",
            };
            let sweeps = state.sweeps.lock().unwrap();
            if job_id.is_empty() {
                let mut ids: Vec<&String> = sweeps.keys().collect();
                ids.sort();
                let jobs = ids.into_iter().map(|id| listing_doc(&sweeps[id])).collect::<Vec<_>>();
                return Response {
                    body: ok_fields(vec![("jobs", JsonValue::Array(jobs))]),
                    shutdown: false,
                    wait: None,
                };
            }
            match sweeps.get(job_id) {
                Some(job) => {
                    let phase = job.phase.lock().unwrap();
                    Response {
                        body: phase_doc(job_id, &phase, &job.progress),
                        shutdown: false,
                        wait: None,
                    }
                }
                None => refuse(format!("unknown job {job_id}")),
            }
        }
        "submit" => {
            let Some(manifest) = doc.get("manifest") else {
                return refuse("submit needs a `manifest` field".to_string());
            };
            let spec = match ExperimentSpec::from_json_value(manifest) {
                Ok(s) => s,
                Err(e) => return refuse(format!("invalid manifest: {e}")),
            };
            let wait = doc.get("wait").and_then(JsonValue::as_bool).unwrap_or(false);
            let job_id = spec.fingerprint();
            let job = submit(state, job_id.clone(), spec);
            let body = phase_doc(&job_id, &job.phase.lock().unwrap(), &job.progress);
            // Waiting is the connection loop's business, not ours: it
            // streams keep-alive progress lines and the final report, so
            // one slow sweep never pins this dispatch path.
            let wait = wait.then_some(job);
            Response { body, shutdown: false, wait }
        }
        other => refuse(format!("unknown command `{other}`")),
    }
}

/// Registers a sweep (or attaches to the already-registered one with the
/// same fingerprint) and, when fresh, spawns its worker thread.
fn submit(state: &Arc<ServiceState>, job_id: String, spec: ExperimentSpec) -> Arc<SweepJob> {
    let mut sweeps = state.sweeps.lock().unwrap();
    if let Some(existing) = sweeps.get(&job_id) {
        return Arc::clone(existing);
    }
    let job = Arc::new(SweepJob {
        id: job_id.clone(),
        spec,
        progress: Arc::new(SweepProgress::new()),
        phase: Mutex::new(SweepPhase::Queued),
        cond: Condvar::new(),
    });
    sweeps.insert(job_id.clone(), Arc::clone(&job));
    drop(sweeps);
    let state = Arc::clone(state);
    let worker = Arc::clone(&job);
    std::thread::spawn(move || {
        worker.set_phase(SweepPhase::Running);
        let done =
            catch_unwind(AssertUnwindSafe(|| run_sweep(&state, &worker))).unwrap_or_else(|_| {
                SweepDone {
                    artifact: String::new(),
                    total: worker.spec.points.len(),
                    failed: worker.spec.points.len(),
                    quarantined: worker.spec.points.len(),
                    failures: vec![error_doc(&format!("sweep {job_id} panicked"), 1)],
                    store_hits: 0,
                    store_misses: 0,
                }
            });
        worker.set_phase(SweepPhase::Done(Box::new(done)));
    });
    job
}

/// One sweep through the scheduler: every point of the spec, against a
/// fresh handle on the daemon's store (fresh so the hit/miss counters are
/// per-sweep — that is what `submit --wait` reports to its client).
fn run_sweep(state: &ServiceState, job: &SweepJob) -> SweepDone {
    let spec = &job.spec;
    let store = state.store_dir.as_ref().and_then(|d| match ResultStore::open(d) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("[serve] cannot open store {}: {e}; sweeping cold", d.display());
            None
        }
    });
    let swept = Scheduler::new(state.options.clone(), store.as_ref())
        .with_progress(Arc::clone(&job.progress))
        .run(&[(spec, (0..spec.points.len()).collect())]);
    let outcomes = &swept.outcomes[0];
    let results: Vec<PointResult> = outcomes.iter().map(|o| o.result.clone()).collect();
    let (store_hits, store_misses) = store
        .map(|s| {
            let st = s.stats();
            (st.hits, st.misses)
        })
        .unwrap_or((0, 0));
    SweepDone {
        artifact: render_spec(spec, &results),
        total: outcomes.len(),
        failed: outcomes.iter().filter(|o| !o.state.is_done()).count(),
        quarantined: outcomes
            .iter()
            .filter(|o| matches!(o.state, JobState::Quarantined(_)))
            .count(),
        failures: outcomes.iter().filter_map(|o| o.to_error_doc()).collect(),
        store_hits,
        store_misses,
    }
}

/// The accept loop: a bound socket plus the shared state.
pub struct Daemon {
    listener: UnixListener,
    state: Arc<ServiceState>,
}

impl Daemon {
    /// Binds `sock` (replacing a stale socket file from a dead daemon) and
    /// prepares the shared state. The socket file is removed again on
    /// clean shutdown.
    pub fn bind(
        sock: &Path,
        store_dir: Option<PathBuf>,
        options: RunOptions,
    ) -> std::io::Result<Daemon> {
        // A dead daemon leaves its socket file behind and bind would fail
        // with AddrInUse; a *live* daemon holds the listener, so probe
        // with a connect before clobbering.
        if sock.exists() {
            if UnixStream::connect(sock).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("a daemon is already listening on {}", sock.display()),
                ));
            }
            std::fs::remove_file(sock)?;
        }
        let listener = UnixListener::bind(sock)?;
        let state = Arc::new(ServiceState::new(sock.to_path_buf(), store_dir, options));
        Ok(Daemon { listener, state })
    }

    /// The daemon's shared state (exposed for in-process tests).
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Serves until a `shutdown` command arrives: accepts connections,
    /// one handler thread per client, any number of request lines per
    /// connection. Returns the number of sweeps the daemon ran.
    pub fn run(self) -> std::io::Result<usize> {
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("[serve] accept failed: {e}");
                    continue;
                }
            };
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || serve_connection(&state, stream));
        }
        let swept = self.state.sweeps.lock().unwrap().len();
        let _ = std::fs::remove_file(&self.state.sock);
        Ok(swept)
    }
}

/// Request/response loop for one client connection.
fn serve_connection(state: &Arc<ServiceState>, stream: UnixStream) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("[serve] cannot clone connection: {e}");
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    loop {
        line.clear();
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) => {
                eprintln!("[serve] read failed: {e}");
                return;
            }
        }
        if line.iter().all(|b| b.is_ascii_whitespace()) {
            continue;
        }
        let response = handle_line(state, &line);
        let body = match &response.wait {
            // A waiting submit: stream keep-alive progress lines until
            // the sweep is done, then its final report. A client that
            // hung up mid-wait just ends this connection; the sweep
            // itself is unaffected.
            Some(job) => loop {
                match job.wait_done_for(WAIT_HEARTBEAT) {
                    Some(done) => {
                        break phase_doc(&job.id, &SweepPhase::Done(Box::new(done)), &job.progress)
                    }
                    None => {
                        let mut beat =
                            phase_doc(&job.id, &job.phase.lock().unwrap().clone(), &job.progress);
                        if let JsonValue::Object(fields) = &mut beat {
                            fields.push(("hb".to_string(), JsonValue::Bool(true)));
                        }
                        let mut out = beat.render();
                        out.push('\n');
                        if writer.write_all(out.as_bytes()).is_err() {
                            return;
                        }
                    }
                }
            },
            None => response.body.clone(),
        };
        let mut out = body.render();
        out.push('\n');
        if let Err(e) = writer.write_all(out.as_bytes()) {
            eprintln!("[serve] write failed: {e}");
            return;
        }
        if response.shutdown {
            // Flip the flag, then poke the accept loop awake with a
            // throwaway connection so it observes the flag and exits.
            state.shutdown.store(true, Ordering::SeqCst);
            let _ = UnixStream::connect(&state.sock);
            return;
        }
    }
}

/// The client-side socket deadline: `XLOOPS_CLIENT_TIMEOUT` in ms (`0`
/// disables), defaulting to 10 s. Long waits survive it because a
/// waiting submit receives a keep-alive line every `WAIT_HEARTBEAT` —
/// each received line rearms the deadline, so only a daemon that has
/// genuinely stopped talking trips it.
pub fn client_timeout() -> Option<Duration> {
    match std::env::var("XLOOPS_CLIENT_TIMEOUT").ok().and_then(|v| v.trim().parse::<u64>().ok()) {
        Some(0) => None,
        Some(ms) => Some(Duration::from_millis(ms)),
        None => Some(Duration::from_secs(10)),
    }
}

/// One client round-trip: connect, send `body` as a line, read response
/// lines until the final (non-keep-alive) one. Read and write deadlines
/// come from [`client_timeout`], so a hung daemon surfaces as a timed-out
/// I/O error instead of blocking the client forever.
pub fn request(sock: &Path, body: &JsonValue) -> std::io::Result<JsonValue> {
    request_with(sock, body, client_timeout())
}

/// [`request`] with an explicit socket deadline (`None` blocks forever).
pub fn request_with(
    sock: &Path,
    body: &JsonValue,
    timeout: Option<Duration>,
) -> std::io::Result<JsonValue> {
    let mut stream = UnixStream::connect(sock)?;
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let mut out = body.render();
    out.push('\n');
    stream.write_all(out.as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before responding",
            ));
        }
        let doc = JsonValue::parse(line.trim()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed daemon response: {e}"),
            )
        })?;
        // Keep-alive progress lines rearm the deadline and are skipped;
        // the first line without the marker is the response.
        if doc.get("hb").is_some() {
            continue;
        }
        return Ok(doc);
    }
}
