//! The service layer: a long-running sweep daemon over the scheduler.
//!
//! `xloops serve` hosts the [`crate::sched::Scheduler`] behind the
//! unified NDJSON wire protocol ([`crate::proto`]) on a Unix socket (the
//! path comes from `--sock` or `XLOOPS_SOCK`) and, when asked, a TCP
//! listener alongside it (`--listen tcp://HOST:PORT` or `XLOOPS_LISTEN`),
//! so repeated sweeps amortize one warm durable store across many client
//! invocations — local or cross-machine. `xloops submit` and `xloops
//! status` are thin clients — one request line out, one response line
//! back — and the CLI's synchronous sweep mode is the same scheduler
//! called in-process, so the daemon adds no second orchestration path.
//!
//! The wire grammar, framing, deadlines, and handshake rules live in
//! [`crate::proto`]; the transports in [`crate::transport`]. This module
//! is transport-blind: `serve_connection` speaks to a [`Conn`] and
//! only consults [`Conn::is_remote`] to decide whether the version/token
//! handshake is mandatory (TCP) or optional (Unix, whose filesystem
//! permissions are the access control).
//!
//! A remote `xloops worker --connect` process `register`s over the same
//! listener; its connection is handed to the daemon's
//! [`RemoteRegistry`], where the scheduler's pool machinery checks it
//! out as just another worker (see [`crate::worker`]).
//!
//! Malformed input — non-UTF-8 bytes, broken JSON, schema violations, an
//! invalid manifest — produces an `ok:false` response with the canonical
//! [`error_doc`] shape and exit code 2 (the CLI's usage-error code), never
//! a daemon panic; the protocol proptests feed byte soup straight into
//! [`handle_line`] to pin that.
//!
//! ## Crash safety
//!
//! The daemon holds no result state the store doesn't: each sweep runs
//! through the scheduler against the daemon's store directory, so a
//! `kill -9` mid-sweep loses only in-flight points. Resubmitting after a
//! restart re-derives the job list and finds every completed point as a
//! store hit — resume is a property of the layering, not a recovery
//! subsystem. Clean exits (`shutdown`, SIGTERM via the CLI's handler)
//! unlink the Unix socket and close the TCP listener, so restarts never
//! rely solely on stale-socket takeover.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use xloops_sim::{error_doc, RunOptions};
use xloops_stats::JsonValue;

use crate::job::JobState;
use crate::manifest::{render_spec, ExperimentSpec, PointResult};
use crate::proto::{
    self, check_handshake, hello_ok, ok_fields, FrameReader, FrameWriter, Refusal, Request,
    WAIT_HEARTBEAT,
};
use crate::sched::{Scheduler, SweepProgress};
use crate::store::ResultStore;
use crate::transport::{Conn, Endpoint, Listener};
use crate::worker::{RemoteHandle, RemoteRegistry};

/// Resolves the daemon endpoint: an explicit `--sock` value wins,
/// otherwise `XLOOPS_SOCK`. Both accept a Unix socket path or a
/// `tcp://HOST:PORT` address (thin clients can dial either).
pub fn sock_from(flag: Option<String>) -> Option<Endpoint> {
    flag.or_else(|| std::env::var("XLOOPS_SOCK").ok())
        .filter(|s| !s.is_empty())
        .map(|s| Endpoint::parse(&s))
}

/// Resolves the extra TCP listen address: `--listen` wins, otherwise
/// `XLOOPS_LISTEN`.
pub fn listen_from(flag: Option<String>) -> Option<Endpoint> {
    flag.or_else(|| std::env::var("XLOOPS_LISTEN").ok())
        .filter(|s| !s.is_empty())
        .map(|s| Endpoint::parse(&s))
}

/// Everything a finished sweep produced, kept until the daemon exits so
/// late `status` queries (and duplicate submits) answer instantly.
#[derive(Clone, Debug)]
pub struct SweepDone {
    /// The rendered artifact text.
    pub artifact: String,
    /// Total points swept.
    pub total: usize,
    /// Points that ended `Failed` or `Quarantined`.
    pub failed: usize,
    /// The subset of `failed` that ended `Quarantined` (an untyped
    /// diagnosis, e.g. an exhausted worker-retry budget or a panic).
    pub quarantined: usize,
    /// Canonical [`error_doc`] per failed point.
    pub failures: Vec<JsonValue>,
    /// Store hits while sweeping (0 without a store).
    pub store_hits: u64,
    /// Store misses while sweeping (0 without a store).
    pub store_misses: u64,
}

/// A submitted sweep's lifecycle — the sweep-level analogue of
/// [`crate::job::JobState`], with the same wire labels.
#[derive(Clone, Debug)]
pub enum SweepPhase {
    /// Accepted, worker not yet running.
    Queued,
    /// The scheduler is sweeping.
    Running,
    /// Finished; the artifact and failure report.
    Done(Box<SweepDone>),
}

impl SweepPhase {
    fn label(&self) -> &'static str {
        match self {
            SweepPhase::Queued => "queued",
            SweepPhase::Running => "running",
            SweepPhase::Done(_) => "done",
        }
    }
}

/// One submitted sweep: the manifest, its current phase, and the live
/// progress tracker the scheduler ticks while sweeping. `cond` is
/// notified on every phase change so any number of `--wait` clients can
/// block on the same sweep.
pub struct SweepJob {
    id: String,
    spec: ExperimentSpec,
    progress: Arc<SweepProgress>,
    phase: Mutex<SweepPhase>,
    cond: Condvar,
}

impl SweepJob {
    fn set_phase(&self, phase: SweepPhase) {
        *self.phase.lock().unwrap() = phase;
        self.cond.notify_all();
    }

    /// Blocks until the sweep is done, then returns the report.
    pub fn wait_done(&self) -> SweepDone {
        let mut phase = self.phase.lock().unwrap();
        loop {
            if let SweepPhase::Done(done) = &*phase {
                return (**done).clone();
            }
            phase = self.cond.wait(phase).unwrap();
        }
    }

    /// Blocks up to `timeout` for the sweep to finish; `None` means it is
    /// still going (time to stream a keep-alive line, not to give up).
    pub fn wait_done_for(&self, timeout: Duration) -> Option<SweepDone> {
        let deadline = Instant::now() + timeout;
        let mut phase = self.phase.lock().unwrap();
        loop {
            if let SweepPhase::Done(done) = &*phase {
                return Some((**done).clone());
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            phase = self.cond.wait_timeout(phase, left).unwrap().0;
        }
    }
}

/// How a daemon binds its listeners: the Unix socket (always), the
/// optional TCP listener, the store, run options, and the TCP token.
pub struct ServeConfig {
    /// The Unix socket path.
    pub sock: PathBuf,
    /// An optional TCP listen address alongside the Unix socket.
    pub listen: Option<Endpoint>,
    /// The durable store directory, when sweeps should be durable.
    pub store_dir: Option<PathBuf>,
    /// The options every sweep runs under.
    pub options: RunOptions,
    /// The shared secret TCP peers must present (`XLOOPS_TOKEN`); `None`
    /// accepts any version-matched TCP peer.
    pub token: Option<String>,
}

impl ServeConfig {
    /// A Unix-only daemon config (the pre-network shape) under `options`.
    pub fn unix(sock: impl Into<PathBuf>, store_dir: Option<PathBuf>, options: RunOptions) -> Self {
        ServeConfig { sock: sock.into(), listen: None, store_dir, options, token: None }
    }
}

/// Shared daemon state: the sweep registry plus everything a worker needs
/// to run one (store directory, run options), the remote-worker registry,
/// and the identity facts `status` reports (version, uptime).
pub struct ServiceState {
    store_dir: Option<PathBuf>,
    options: RunOptions,
    sweeps: Mutex<HashMap<String, Arc<SweepJob>>>,
    shutdown: AtomicBool,
    /// Every bound endpoint, poked awake on shutdown.
    poke: Mutex<Vec<Endpoint>>,
    token: Option<String>,
    started: Instant,
    remotes: Arc<RemoteRegistry>,
}

impl ServiceState {
    /// Fresh state for a daemon sweeping under `options` against the
    /// store at `store_dir` (when given), gating TCP peers on `token`.
    pub fn new(store_dir: Option<PathBuf>, options: RunOptions, token: Option<String>) -> Self {
        ServiceState {
            store_dir,
            options,
            sweeps: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            poke: Mutex::new(Vec::new()),
            token,
            started: Instant::now(),
            remotes: Arc::new(RemoteRegistry::new()),
        }
    }

    /// The remote-worker registry (exposed for in-process tests).
    pub fn remotes(&self) -> &Arc<RemoteRegistry> {
        &self.remotes
    }

    fn handshake(&self, version: u64, token: Option<&str>) -> Result<(), Refusal> {
        check_handshake(version, token, self.token.as_deref())
    }
}

/// One response line plus whether the daemon should stop accepting.
pub struct Response {
    /// The JSON document to write back (one line).
    pub body: JsonValue,
    /// `true` after a `shutdown` command.
    pub shutdown: bool,
    /// Set on a waiting `submit`: the connection loop streams keep-alive
    /// progress lines for this sweep and writes its final report as the
    /// response, instead of `body`.
    pub wait: Option<Arc<SweepJob>>,
}

fn refuse(message: String) -> Response {
    Response { body: Refusal::new(message).to_json_value(), shutdown: false, wait: None }
}

/// The sweep's current phase as a response document, with the live
/// queued/running/done progress counts alongside. A done sweep reports
/// its artifact, counts, per-point [`error_doc`]s, and store traffic.
fn phase_doc(job_id: &str, phase: &SweepPhase, progress: &SweepProgress) -> JsonValue {
    let mut fields = vec![
        ("job", JsonValue::Str(job_id.to_string())),
        ("state", JsonValue::Str(phase.label().to_string())),
        ("progress", progress.to_json_value()),
    ];
    if let SweepPhase::Done(done) = phase {
        fields.push(("points", JsonValue::UInt(done.total as u64)));
        fields.push(("failed", JsonValue::UInt(done.failed as u64)));
        fields.push(("quarantined", JsonValue::UInt(done.quarantined as u64)));
        fields.push(("errors", JsonValue::Array(done.failures.clone())));
        fields.push((
            "store",
            JsonValue::object(vec![
                ("hits", JsonValue::UInt(done.store_hits)),
                ("misses", JsonValue::UInt(done.store_misses)),
            ]),
        ));
        fields.push(("artifact", JsonValue::Str(done.artifact.clone())));
    }
    ok_fields(fields)
}

/// One row of the job listing a bare `status` returns: identity, phase,
/// live progress, and — once done — the terminal point counts.
fn listing_doc(job: &SweepJob) -> JsonValue {
    let phase = job.phase.lock().unwrap();
    let mut fields = vec![
        ("job".to_string(), JsonValue::Str(job.id.clone())),
        ("state".to_string(), JsonValue::Str(phase.label().to_string())),
        ("points".to_string(), JsonValue::UInt(job.spec.points.len() as u64)),
        ("progress".to_string(), job.progress.to_json_value()),
    ];
    if let SweepPhase::Done(done) = &*phase {
        fields.push(("done".to_string(), JsonValue::UInt((done.total - done.failed) as u64)));
        fields.push(("failed".to_string(), JsonValue::UInt(done.failed as u64)));
        fields.push(("quarantined".to_string(), JsonValue::UInt(done.quarantined as u64)));
    }
    JsonValue::Object(fields)
}

/// Handles one raw request line: [`Request::parse`] plus
/// [`handle_request`]. This is the daemon's entire per-line surface and
/// it must never panic — every malformed input path returns an
/// `ok:false` response instead (pinned by the codec proptests).
pub fn handle_line(state: &Arc<ServiceState>, line: &[u8]) -> Response {
    match Request::parse(line) {
        Ok(req) => handle_request(state, req),
        Err(refusal) => Response { body: refusal.to_json_value(), shutdown: false, wait: None },
    }
}

/// Dispatches one typed request on the daemon. Worker-half commands are
/// refused here — they belong on a worker's connection, and `register`
/// is handled at the connection level (`serve_connection`) because it
/// changes what the connection *is*.
pub fn handle_request(state: &Arc<ServiceState>, req: Request) -> Response {
    match req {
        Request::Ping => Response {
            body: ok_fields(vec![("pong", JsonValue::Bool(true))]),
            shutdown: false,
            wait: None,
        },
        Request::Shutdown => Response {
            body: ok_fields(vec![("shutdown", JsonValue::Bool(true))]),
            shutdown: true,
            wait: None,
        },
        Request::Hello { version, token } => match state.handshake(version, token.as_deref()) {
            Ok(()) => Response { body: hello_ok(), shutdown: false, wait: None },
            Err(refusal) => refuse(refusal.message),
        },
        Request::Status { job: None } => {
            let sweeps = state.sweeps.lock().unwrap();
            let mut ids: Vec<&String> = sweeps.keys().collect();
            ids.sort();
            let jobs = ids.into_iter().map(|id| listing_doc(&sweeps[id])).collect::<Vec<_>>();
            Response {
                body: ok_fields(vec![
                    ("jobs", JsonValue::Array(jobs)),
                    ("version", JsonValue::Str(proto::build_version().to_string())),
                    ("uptime_ms", JsonValue::UInt(state.started.elapsed().as_millis() as u64)),
                    ("workers", JsonValue::UInt(state.remotes.registered() as u64)),
                    ("workers_idle", JsonValue::UInt(state.remotes.available() as u64)),
                ]),
                shutdown: false,
                wait: None,
            }
        }
        Request::Status { job: Some(job_id) } => {
            let sweeps = state.sweeps.lock().unwrap();
            match sweeps.get(&job_id) {
                Some(job) => {
                    let phase = job.phase.lock().unwrap();
                    Response {
                        body: phase_doc(&job_id, &phase, &job.progress),
                        shutdown: false,
                        wait: None,
                    }
                }
                None => refuse(format!("unknown job {job_id}")),
            }
        }
        Request::Submit { spec, wait } => {
            let job_id = spec.fingerprint();
            let job = submit(state, job_id.clone(), *spec);
            let body = phase_doc(&job_id, &job.phase.lock().unwrap(), &job.progress);
            // Waiting is the connection loop's business, not ours: it
            // streams keep-alive progress lines and the final report, so
            // one slow sweep never pins this dispatch path.
            let wait = wait.then_some(job);
            Response { body, shutdown: false, wait }
        }
        Request::Register { .. } => {
            refuse("register must be the first request of a worker connection".to_string())
        }
        req @ (Request::Manifest { .. } | Request::Job { .. } | Request::Exit) => {
            refuse(format!("command `{}` is for workers, not the daemon", req.name()))
        }
    }
}

/// Registers a sweep (or attaches to the already-registered one with the
/// same fingerprint) and, when fresh, spawns its worker thread.
fn submit(state: &Arc<ServiceState>, job_id: String, spec: ExperimentSpec) -> Arc<SweepJob> {
    let mut sweeps = state.sweeps.lock().unwrap();
    if let Some(existing) = sweeps.get(&job_id) {
        return Arc::clone(existing);
    }
    let job = Arc::new(SweepJob {
        id: job_id.clone(),
        spec,
        progress: Arc::new(SweepProgress::new()),
        phase: Mutex::new(SweepPhase::Queued),
        cond: Condvar::new(),
    });
    sweeps.insert(job_id.clone(), Arc::clone(&job));
    drop(sweeps);
    let state = Arc::clone(state);
    let worker = Arc::clone(&job);
    std::thread::spawn(move || {
        worker.set_phase(SweepPhase::Running);
        let done =
            catch_unwind(AssertUnwindSafe(|| run_sweep(&state, &worker))).unwrap_or_else(|_| {
                SweepDone {
                    artifact: String::new(),
                    total: worker.spec.points.len(),
                    failed: worker.spec.points.len(),
                    quarantined: worker.spec.points.len(),
                    failures: vec![error_doc(&format!("sweep {job_id} panicked"), 1)],
                    store_hits: 0,
                    store_misses: 0,
                }
            });
        worker.set_phase(SweepPhase::Done(Box::new(done)));
    });
    job
}

/// One sweep through the scheduler: every point of the spec, against a
/// fresh handle on the daemon's store (fresh so the hit/miss counters are
/// per-sweep — that is what `submit --wait` reports to its client).
/// Registered remote workers ride along as executors.
fn run_sweep(state: &ServiceState, job: &SweepJob) -> SweepDone {
    let spec = &job.spec;
    let store = state.store_dir.as_ref().and_then(|d| match ResultStore::open(d) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("[serve] cannot open store {}: {e}; sweeping cold", d.display());
            None
        }
    });
    let swept = Scheduler::new(state.options.clone(), store.as_ref())
        .with_remotes(Some(Arc::clone(&state.remotes)))
        .with_progress(Arc::clone(&job.progress))
        .run(&[(spec, (0..spec.points.len()).collect())]);
    let outcomes = &swept.outcomes[0];
    let results: Vec<PointResult> = outcomes.iter().map(|o| o.result.clone()).collect();
    let (store_hits, store_misses) = store
        .map(|s| {
            let st = s.stats();
            (st.hits, st.misses)
        })
        .unwrap_or((0, 0));
    SweepDone {
        artifact: render_spec(spec, &results),
        total: outcomes.len(),
        failed: outcomes.iter().filter(|o| !o.state.is_done()).count(),
        quarantined: outcomes
            .iter()
            .filter(|o| matches!(o.state, JobState::Quarantined(_)))
            .count(),
        failures: outcomes.iter().filter_map(|o| o.to_error_doc()).collect(),
        store_hits,
        store_misses,
    }
}

/// The accept loops: the bound listeners plus the shared state.
pub struct Daemon {
    listeners: Vec<Listener>,
    state: Arc<ServiceState>,
}

impl Daemon {
    /// Binds the Unix socket (replacing a stale socket file from a dead
    /// daemon) and, when configured, the TCP listener, and prepares the
    /// shared state. Both are closed — and the socket file unlinked —
    /// on clean shutdown.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Daemon> {
        let mut listeners = vec![Listener::bind(&Endpoint::Unix(cfg.sock.clone()))?];
        if let Some(ep) = &cfg.listen {
            match Listener::bind(ep) {
                Ok(l) => listeners.push(l),
                Err(e) => {
                    listeners.remove(0).close();
                    return Err(e);
                }
            }
        }
        let state = Arc::new(ServiceState::new(cfg.store_dir, cfg.options, cfg.token));
        // Poke addresses, not bind addresses: a TCP wildcard bind is
        // rewritten to loopback so the shutdown poke always connects.
        *state.poke.lock().unwrap() = listeners.iter().map(Listener::poke_endpoint).collect();
        Ok(Daemon { listeners, state })
    }

    /// The daemon's shared state (exposed for in-process tests).
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// The bound TCP address, when a TCP listener was configured (port
    /// `0` resolves to the real port).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.listeners.iter().find_map(Listener::tcp_addr)
    }

    /// Serves until a `shutdown` command arrives: accepts connections on
    /// every listener, one handler thread per client, any number of
    /// request lines per connection. Returns the number of sweeps the
    /// daemon ran.
    pub fn run(self) -> std::io::Result<usize> {
        let Daemon { listeners, state } = self;
        std::thread::scope(|scope| {
            for listener in &listeners[1..] {
                let state = Arc::clone(&state);
                scope.spawn(move || accept_loop(listener, &state));
            }
            accept_loop(&listeners[0], &state);
        });
        let swept = state.sweeps.lock().unwrap().len();
        for listener in listeners {
            listener.close();
        }
        Ok(swept)
    }
}

fn accept_loop(listener: &Listener, state: &Arc<ServiceState>) {
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(e) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                eprintln!("[serve] accept failed: {e}");
                continue;
            }
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let state = Arc::clone(state);
        std::thread::spawn(move || serve_connection(&state, conn));
    }
}

/// Request/response loop for one client connection, transport-blind: a
/// TCP peer must open with `hello` (client) or `register` (worker) and
/// pass the version/token handshake; Unix peers speak the pre-network
/// wire unchanged (a handshake is answered if offered, never required).
fn serve_connection(state: &Arc<ServiceState>, conn: Conn) {
    let remote = conn.is_remote();
    if remote {
        // Slowloris guard: an unauthenticated TCP peer gets ACK_DEADLINE
        // to complete the handshake — a connection that sends nothing
        // (or dribbles bytes) times out instead of pinning this thread
        // and its file descriptor forever. The deadline comes off once
        // the peer is greeted or registered, because legitimate traffic
        // (waiting submits, idle workers) is quiet for long stretches.
        if let Err(e) = conn.set_timeout(Some(proto::ACK_DEADLINE)) {
            eprintln!("[serve] cannot arm handshake deadline: {e}");
            return;
        }
    }
    let peer = match conn.split() {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("[serve] cannot split connection: {e}");
            return;
        }
    };
    let (read, write, control) = peer;
    let mut reader = FrameReader::new(read);
    let mut writer = FrameWriter::new(write);
    let mut control = Some(control);
    let mut greeted = !remote;
    loop {
        let req = match reader.next_line() {
            Ok(Some(line)) => Request::parse(line),
            Ok(None) => return,
            Err(e) => {
                // An oversized frame (the MAX_FRAME cap) is a protocol
                // violation, not a transport failure: tell the peer why
                // before hanging up.
                if e.kind() == std::io::ErrorKind::InvalidData {
                    let _ = writer.send(&Refusal::new(e.to_string()).to_json_value());
                }
                eprintln!("[serve] read failed: {e}");
                return;
            }
        };
        if !greeted && !matches!(req, Ok(Request::Hello { .. }) | Ok(Request::Register { .. })) {
            let refusal = Refusal::new(format!(
                "TCP connections must open with a `hello` or `register` handshake \
                 (protocol v{})",
                proto::PROTO_VERSION
            ));
            let _ = writer.send(&refusal.to_json_value());
            return;
        }
        // `register` rebinds the connection as a worker: handshake, ack,
        // then hand the split halves to the registry and leave the loop.
        if let Ok(Request::Register { version, token }) = &req {
            match state.handshake(*version, token.as_deref()) {
                Ok(()) => {
                    let control = control.take().expect("control handle unused until handoff");
                    // A registered worker may idle for hours between
                    // jobs: the handshake deadline comes off, and the
                    // pool's two-clock supervision owns liveness.
                    if let Err(e) = control.set_timeout(None) {
                        eprintln!("[serve] cannot clear handshake deadline: {e}");
                        return;
                    }
                    if writer.send(&hello_ok()).is_err() {
                        return;
                    }
                    let (tx, rx) = std::sync::mpsc::channel();
                    std::thread::spawn(move || proto::pump_lines(reader, tx));
                    state.remotes.register(RemoteHandle::new(writer, control, rx));
                }
                Err(refusal) => {
                    let _ = writer.send(&refusal.to_json_value());
                }
            }
            return;
        }
        let response = match req {
            Ok(req) => {
                let hello = matches!(req, Request::Hello { .. });
                let resp = handle_request(state, req);
                if hello && resp.body.get("ok").and_then(JsonValue::as_bool) == Some(true) {
                    greeted = true;
                    // Greeted TCP clients may legitimately go quiet (a
                    // `submit --wait` reads for a whole sweep): relax
                    // the handshake deadline now that they are trusted.
                    if remote {
                        if let Some(c) = &control {
                            let _ = c.set_timeout(None);
                        }
                    }
                } else if hello && remote {
                    // A failed TCP handshake closes the connection after
                    // the refusal is written.
                    let _ = writer.send(&resp.body);
                    return;
                }
                resp
            }
            Err(refusal) => Response { body: refusal.to_json_value(), shutdown: false, wait: None },
        };
        let body = match &response.wait {
            // A waiting submit: stream keep-alive progress lines until
            // the sweep is done, then its final report. A client that
            // hung up mid-wait just ends this connection; the sweep
            // itself is unaffected.
            Some(job) => loop {
                match job.wait_done_for(WAIT_HEARTBEAT) {
                    Some(done) => {
                        break phase_doc(&job.id, &SweepPhase::Done(Box::new(done)), &job.progress)
                    }
                    None => {
                        let mut beat =
                            phase_doc(&job.id, &job.phase.lock().unwrap().clone(), &job.progress);
                        if let JsonValue::Object(fields) = &mut beat {
                            fields.push(("hb".to_string(), JsonValue::Bool(true)));
                        }
                        if writer.send(&beat).is_err() {
                            return;
                        }
                    }
                }
            },
            None => response.body.clone(),
        };
        if let Err(e) = writer.send(&body) {
            eprintln!("[serve] write failed: {e}");
            return;
        }
        if response.shutdown {
            // Flip the flag, then poke every accept loop awake with a
            // throwaway connection so it observes the flag and exits.
            state.shutdown.store(true, Ordering::SeqCst);
            for ep in state.poke.lock().unwrap().iter() {
                let _ = Conn::connect(ep);
            }
            return;
        }
    }
}

/// Installs a SIGTERM handler that unlinks `sock` before exiting, so an
/// orchestrator's `kill` leaves no stale socket file behind. Raw C FFI
/// (`signal`/`unlink`/`_exit`) because the handler must be async-signal
/// safe and the repo carries no libc crate. Installed only by the CLI's
/// `serve` path — library embedders and in-process tests keep their
/// process's signal disposition untouched.
#[cfg(unix)]
pub fn install_sigterm_unlink(sock: &std::path::Path) {
    use std::os::unix::ffi::OsStrExt;
    use std::sync::atomic::AtomicPtr;

    static TERM_PATH: AtomicPtr<u8> = AtomicPtr::new(std::ptr::null_mut());
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        fn unlink(path: *const u8) -> i32;
        fn _exit(code: i32) -> !;
    }

    extern "C" fn on_term(_sig: i32) {
        let path = TERM_PATH.load(Ordering::SeqCst);
        unsafe {
            if !path.is_null() {
                unlink(path);
            }
            _exit(0);
        }
    }

    let mut bytes = sock.as_os_str().as_bytes().to_vec();
    bytes.push(0);
    // Leaked intentionally: the handler may fire at any point for the
    // rest of the process's life.
    let nul_terminated: &'static mut [u8] = Box::leak(bytes.into_boxed_slice());
    TERM_PATH.store(nul_terminated.as_mut_ptr(), Ordering::SeqCst);
    unsafe {
        signal(SIGTERM, on_term);
    }
}
