//! The unified wire protocol: one framed NDJSON codec for every surface.
//!
//! Three NDJSON dialects used to exist side by side — the serve daemon's
//! socket protocol, the worker pool's pipe protocol, and the thin
//! clients — each with its own hand-rolled `read_line` loop, deadline
//! handling, and heartbeat skipping. This module is the single
//! replacement: a typed [`Request`] enum for the *union* of both
//! command sets, a never-panic [`Request::parse`] whose failures are
//! canonical [`Refusal`]s (exit code 2, the CLI's usage-error code), and
//! the framing primitives ([`FrameReader`] / [`FrameWriter`] /
//! [`pump_lines`]) every transport shares. A grep-enforced test
//! (`tests/wire_single_source.rs`) pins that no raw NDJSON loop grows
//! back outside this module.
//!
//! ## Grammar
//!
//! One request per line, one *final* response line per request; `hb`
//! marked lines (worker heartbeats, a waiting submit's keep-alive
//! progress) may arrive before the final line and every reader here
//! skips them while rearming its liveness clocks:
//!
//! ```text
//! request  = object "\n"            ; at most MAX_FRAME bytes
//! object   = {"cmd":"hello","v":V[,"token":T]}      client handshake
//!          | {"cmd":"register","v":V[,"token":T]}   remote-worker handshake
//!          | {"cmd":"ping"}
//!          | {"cmd":"submit","manifest":SPEC[,"wait":B]}
//!          | {"cmd":"status"[,"job":FP]}
//!          | {"cmd":"shutdown"}
//!          | {"cmd":"manifest","manifest":SPEC}
//!          | {"cmd":"job","job":FP,"index":I,"options":OPTS}
//!          | {"cmd":"exit"}
//! response = {"ok":true, ...}
//!          | {"ok":false,"error":{"message":M,"exit_code":2}}
//!          | {"hb":true, ...}                       keep-alive, skipped
//! ```
//!
//! The daemon accepts the client half of the union and refuses the
//! worker half (and vice versa) with a typed refusal — a misrouted
//! command is a protocol error, never a panic or a hang.
//!
//! ## Handshake
//!
//! Unix sockets and pipes are guarded by filesystem permissions and
//! process ancestry, so their wire bytes are exactly the pre-network
//! protocol: no handshake required (one is still *answered* if sent).
//! TCP crosses a real trust boundary: the first line of every TCP
//! connection must be `hello` (clients) or `register` (remote workers)
//! carrying the protocol version [`PROTO_VERSION`] and, when the daemon
//! was started with `XLOOPS_TOKEN`, the matching shared token. Mismatch
//! is a typed refusal and the connection closes.

use std::io::{BufRead, BufReader, Read, Write};
use std::sync::mpsc::Sender;
use std::time::Duration;

use xloops_sim::{error_doc, RunOptions};
use xloops_stats::JsonValue;

use crate::manifest::ExperimentSpec;
use crate::transport::{Conn, Endpoint};

/// The wire-protocol version both handshakes carry. Bump on any change
/// that an old peer would misparse.
pub const PROTO_VERSION: u64 = 1;

/// Hard cap on one frame (one NDJSON line), reader-enforced *while*
/// bytes arrive — not after a newline shows up — so an unauthenticated
/// TCP peer streaming newline-free bytes cannot grow a daemon buffer
/// past this before the handshake is even checked. Generously above any
/// legitimate frame (the largest are submit manifests and done-sweep
/// artifacts, well under a megabyte); an oversized frame is an
/// `InvalidData` I/O error and the connection closes after a refusal.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// How often a worker writes a `{"hb":true}` line while serving.
pub const HEARTBEAT_PERIOD: Duration = Duration::from_millis(250);

/// Cadence of the keep-alive progress lines a waiting `submit` streams.
pub const WAIT_HEARTBEAT: Duration = Duration::from_secs(2);

/// Deadline for protocol acks (ping, manifest registration, handshake) —
/// generous, because only `job` execution can legitimately take long.
pub const ACK_DEADLINE: Duration = Duration::from_secs(30);

/// The heartbeat grace window: how long a worker may write nothing (no
/// heartbeat, no reply) before it is presumed hung
/// (`XLOOPS_HEARTBEAT_GRACE` in ms, default 10 s).
pub fn heartbeat_grace() -> Duration {
    std::env::var("XLOOPS_HEARTBEAT_GRACE")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(10))
}

/// The client-side socket deadline: `XLOOPS_CLIENT_TIMEOUT` in ms (`0`
/// disables), defaulting to 10 s. Long waits survive it because a
/// waiting submit receives a keep-alive line every [`WAIT_HEARTBEAT`] —
/// each received line rearms the deadline, so only a daemon that has
/// genuinely stopped talking trips it.
pub fn client_timeout() -> Option<Duration> {
    match std::env::var("XLOOPS_CLIENT_TIMEOUT").ok().and_then(|v| v.trim().parse::<u64>().ok()) {
        Some(0) => None,
        Some(ms) => Some(Duration::from_millis(ms)),
        None => Some(Duration::from_secs(10)),
    }
}

/// The shared secret gating TCP connections (`XLOOPS_TOKEN`); `None`
/// when unset or empty.
pub fn token_from_env() -> Option<String> {
    std::env::var("XLOOPS_TOKEN").ok().filter(|t| !t.is_empty())
}

/// A typed protocol refusal: the canonical `ok:false` + [`error_doc`]
/// response with the usage/protocol exit code 2.
#[derive(Clone, Debug)]
pub struct Refusal {
    /// What was wrong with the request.
    pub message: String,
}

impl Refusal {
    /// A refusal with `message`.
    pub fn new(message: impl Into<String>) -> Refusal {
        Refusal { message: message.into() }
    }

    /// The single-line response document.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("ok", JsonValue::Bool(false)),
            ("error", error_doc(&self.message, 2)),
        ])
    }
}

/// One parsed wire request: the union of the daemon's client commands
/// and the worker pool's executor commands. Each surface dispatches the
/// half it owns and refuses the other half.
pub enum Request {
    /// Client handshake: protocol version and optional shared token.
    Hello {
        /// The peer's [`PROTO_VERSION`].
        version: u64,
        /// The peer's `XLOOPS_TOKEN`, when it sent one.
        token: Option<String>,
    },
    /// Remote-worker handshake: same fields, but on success the
    /// connection becomes a registered executor instead of a client.
    Register {
        /// The peer's [`PROTO_VERSION`].
        version: u64,
        /// The peer's `XLOOPS_TOKEN`, when it sent one.
        token: Option<String>,
    },
    /// Liveness probe.
    Ping,
    /// Submit a sweep (daemon): the embedded manifest plus whether the
    /// client wants to block for the artifact.
    Submit {
        /// The embedded experiment manifest.
        spec: Box<ExperimentSpec>,
        /// Stream keep-alives and the final report instead of returning
        /// immediately.
        wait: bool,
    },
    /// Query one job (`Some`) or list every job (`None`).
    Status {
        /// The job fingerprint; `None` (or an empty id) lists all jobs.
        job: Option<String>,
    },
    /// Stop the daemon.
    Shutdown,
    /// Register a manifest on a worker (once per fingerprint).
    Manifest {
        /// The embedded experiment manifest.
        spec: Box<ExperimentSpec>,
    },
    /// Execute one point on a worker: the store-key triple.
    Job {
        /// The owning manifest's fingerprint.
        fingerprint: String,
        /// Index into the manifest's point list.
        index: usize,
        /// The options the point runs under.
        options: Box<RunOptions>,
    },
    /// Stop a worker.
    Exit,
}

impl Request {
    /// Parses one raw request line. This is the *entire* byte-facing
    /// parse surface of every daemon and worker, and it must never
    /// panic: bad UTF-8, broken JSON, and schema violations all come
    /// back as typed [`Refusal`]s (pinned by the codec proptests).
    pub fn parse(line: &[u8]) -> Result<Request, Refusal> {
        let text = match std::str::from_utf8(line) {
            Ok(t) => t.trim(),
            Err(e) => return Err(Refusal::new(format!("request is not UTF-8: {e}"))),
        };
        if text.is_empty() {
            return Err(Refusal::new("empty request line"));
        }
        let doc = match JsonValue::parse(text) {
            Ok(d) => d,
            Err(e) => return Err(Refusal::new(format!("request is not JSON: {e}"))),
        };
        Request::from_json_value(&doc)
    }

    /// Typed view of an already-parsed request document.
    pub fn from_json_value(doc: &JsonValue) -> Result<Request, Refusal> {
        let Some(cmd) = doc.get("cmd").and_then(JsonValue::as_str) else {
            return Err(Refusal::new("request has no string `cmd` field"));
        };
        match cmd {
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "exit" => Ok(Request::Exit),
            "hello" | "register" => {
                let Some(version) = doc.get("v").and_then(JsonValue::as_u64) else {
                    return Err(Refusal::new(format!("{cmd} needs a numeric `v` field")));
                };
                let token = match doc.get("token") {
                    Some(v) => match v.as_str() {
                        Some(t) => Some(t.to_string()),
                        None => {
                            return Err(Refusal::new(format!("{cmd} `token` must be a string")))
                        }
                    },
                    None => None,
                };
                if cmd == "hello" {
                    Ok(Request::Hello { version, token })
                } else {
                    Ok(Request::Register { version, token })
                }
            }
            "status" => {
                // A malformed `job` value (present but not a string) is a
                // schema violation; an *absent* or empty one asks for the
                // listing of every known job.
                let job = match doc.get("job") {
                    Some(v) => match v.as_str() {
                        Some(id) => Some(id.to_string()).filter(|id| !id.is_empty()),
                        None => {
                            return Err(Refusal::new("status `job` field must be a string"));
                        }
                    },
                    None => None,
                };
                Ok(Request::Status { job })
            }
            "submit" => {
                let Some(manifest) = doc.get("manifest") else {
                    return Err(Refusal::new("submit needs a `manifest` field"));
                };
                let spec = match ExperimentSpec::from_json_value(manifest) {
                    Ok(s) => s,
                    Err(e) => return Err(Refusal::new(format!("invalid manifest: {e}"))),
                };
                let wait = doc.get("wait").and_then(JsonValue::as_bool).unwrap_or(false);
                Ok(Request::Submit { spec: Box::new(spec), wait })
            }
            "manifest" => {
                let Some(manifest) = doc.get("manifest") else {
                    return Err(Refusal::new("manifest command needs a `manifest` field"));
                };
                let spec = match ExperimentSpec::from_json_value(manifest) {
                    Ok(s) => s,
                    Err(e) => return Err(Refusal::new(format!("invalid manifest: {e}"))),
                };
                Ok(Request::Manifest { spec: Box::new(spec) })
            }
            "job" => {
                let Some(fingerprint) = doc.get("job").and_then(JsonValue::as_str) else {
                    return Err(Refusal::new("job command needs a string `job` field"));
                };
                let Some(index) = doc.get("index").and_then(JsonValue::as_u64) else {
                    return Err(Refusal::new("job command needs an `index` field"));
                };
                let Some(options) = doc.get("options").and_then(RunOptions::from_json_value) else {
                    return Err(Refusal::new("job command needs valid `options`"));
                };
                Ok(Request::Job {
                    fingerprint: fingerprint.to_string(),
                    index: index as usize,
                    options: Box::new(options),
                })
            }
            other => Err(Refusal::new(format!("unknown command `{other}`"))),
        }
    }

    /// The command's wire name (for misrouted-command refusals).
    pub fn name(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Register { .. } => "register",
            Request::Ping => "ping",
            Request::Submit { .. } => "submit",
            Request::Status { .. } => "status",
            Request::Shutdown => "shutdown",
            Request::Manifest { .. } => "manifest",
            Request::Job { .. } => "job",
            Request::Exit => "exit",
        }
    }

    /// Encodes the request exactly as the thin clients and the worker
    /// supervisor write it (field order is part of the byte-compat
    /// contract with the pre-refactor wire).
    pub fn to_json_value(&self) -> JsonValue {
        match self {
            Request::Hello { version, token } => handshake_doc("hello", *version, token.clone()),
            Request::Register { version, token } => {
                handshake_doc("register", *version, token.clone())
            }
            Request::Ping => JsonValue::object(vec![("cmd", JsonValue::Str("ping".to_string()))]),
            Request::Submit { spec, wait } => JsonValue::object(vec![
                ("cmd", JsonValue::Str("submit".to_string())),
                ("manifest", spec.to_json_value()),
                ("wait", JsonValue::Bool(*wait)),
            ]),
            Request::Status { job } => {
                let mut fields = vec![("cmd", JsonValue::Str("status".to_string()))];
                if let Some(id) = job {
                    fields.push(("job", JsonValue::Str(id.clone())));
                }
                JsonValue::object(fields)
            }
            Request::Shutdown => {
                JsonValue::object(vec![("cmd", JsonValue::Str("shutdown".to_string()))])
            }
            Request::Manifest { spec } => manifest_request(spec),
            Request::Job { fingerprint, index, options } => {
                job_request(fingerprint, *index, options)
            }
            Request::Exit => JsonValue::object(vec![("cmd", JsonValue::Str("exit".to_string()))]),
        }
    }
}

fn handshake_doc(cmd: &str, version: u64, token: Option<String>) -> JsonValue {
    let mut fields =
        vec![("cmd", JsonValue::Str(cmd.to_string())), ("v", JsonValue::UInt(version))];
    if let Some(t) = token {
        fields.push(("token", JsonValue::Str(t)));
    }
    JsonValue::object(fields)
}

/// The `hello` line a TCP client opens with.
pub fn hello_request(token: Option<String>) -> JsonValue {
    handshake_doc("hello", PROTO_VERSION, token)
}

/// The `register` line a remote worker opens with.
pub fn register_request(token: Option<String>) -> JsonValue {
    handshake_doc("register", PROTO_VERSION, token)
}

/// A `manifest` registration line (borrowing encoder: the supervisor
/// ships specs it does not own).
pub fn manifest_request(spec: &ExperimentSpec) -> JsonValue {
    JsonValue::object(vec![
        ("cmd", JsonValue::Str("manifest".to_string())),
        ("manifest", spec.to_json_value()),
    ])
}

/// A `job` dispatch line: the store-key triple.
pub fn job_request(fingerprint: &str, index: usize, options: &RunOptions) -> JsonValue {
    JsonValue::object(vec![
        ("cmd", JsonValue::Str("job".to_string())),
        ("job", JsonValue::Str(fingerprint.to_string())),
        ("index", JsonValue::UInt(index as u64)),
        ("options", options.to_json_value()),
    ])
}

/// An `ok:true` response with `fields` appended.
pub fn ok_fields(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    let mut all = vec![("ok".to_string(), JsonValue::Bool(true))];
    all.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    JsonValue::Object(all)
}

/// A worker's bare heartbeat line.
pub fn hb_doc() -> JsonValue {
    JsonValue::object(vec![("hb", JsonValue::Bool(true))])
}

/// Whether a received line is a keep-alive (skipped by every
/// response reader, counted as proof of life by every liveness clock).
pub fn is_heartbeat(doc: &JsonValue) -> bool {
    doc.get("hb").is_some()
}

/// The successful handshake response: protocol version and the daemon's
/// build version.
pub fn hello_ok() -> JsonValue {
    ok_fields(vec![
        ("hello", JsonValue::Bool(true)),
        ("v", JsonValue::UInt(PROTO_VERSION)),
        ("version", JsonValue::Str(build_version().to_string())),
    ])
}

/// The daemon/worker build version (the crate version).
pub fn build_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// Validates a handshake against this side's expectations: version must
/// match exactly, and when `want_token` is set the peer must present it.
pub fn check_handshake(
    version: u64,
    token: Option<&str>,
    want_token: Option<&str>,
) -> Result<(), Refusal> {
    if version != PROTO_VERSION {
        return Err(Refusal::new(format!(
            "protocol version mismatch: this side speaks v{PROTO_VERSION}, peer sent v{version}"
        )));
    }
    if let Some(want) = want_token {
        if !token.is_some_and(|got| token_eq(got, want)) {
            return Err(Refusal::new("bad or missing token"));
        }
    }
    Ok(())
}

/// Constant-time token equality: both values are expanded to
/// fixed-length digests (four FNV-1a-64 lanes with distinct seeds) and
/// compared by folding XOR over every digest byte, so neither the
/// comparison's duration nor its memory access pattern depends on where
/// the first mismatching byte sits — an unauthenticated TCP peer learns
/// nothing about a token prefix from response timing. The hashing is
/// length hiding and timing flattening, not cryptography; the token's
/// threat model is documented in DESIGN.md §4.12.
fn token_eq(got: &str, want: &str) -> bool {
    fn digest(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for lane in 0u64..4 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for &b in s.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            out[lane as usize * 8..][..8].copy_from_slice(&h.to_be_bytes());
        }
        out
    }
    let (a, b) = (digest(got), digest(want));
    a.iter().zip(b.iter()).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

/// The reading half of the framed loop: buffered line reads with blank
/// lines skipped and the [`MAX_FRAME`] byte cap enforced as bytes
/// arrive. This (with [`FrameWriter`] and [`pump_lines`]) is the only
/// place the repository reads NDJSON off a byte stream.
pub struct FrameReader<R> {
    inner: BufReader<R>,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader { inner: BufReader::new(inner), buf: Vec::new() }
    }

    /// Fills `self.buf` with the next frame (up to and including its
    /// newline; a final unterminated line is returned as-is at EOF) and
    /// returns its length — `0` only at clean EOF. The [`MAX_FRAME`]
    /// cap is checked chunk by chunk *while* reading, never waiting for
    /// the newline, so a peer streaming newline-free bytes trips an
    /// `InvalidData` error at the cap instead of growing the buffer.
    fn read_frame(&mut self) -> std::io::Result<usize> {
        self.buf.clear();
        loop {
            let (used, done) = {
                let chunk = self.inner.fill_buf()?;
                if chunk.is_empty() {
                    return Ok(self.buf.len());
                }
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        self.buf.extend_from_slice(&chunk[..=pos]);
                        (pos + 1, true)
                    }
                    None => {
                        self.buf.extend_from_slice(chunk);
                        (chunk.len(), false)
                    }
                }
            };
            self.inner.consume(used);
            if self.buf.len() > MAX_FRAME {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("frame exceeds the {MAX_FRAME} byte cap"),
                ));
            }
            if done {
                return Ok(self.buf.len());
            }
        }
    }

    /// The next non-blank line (without framing whitespace stripped —
    /// parsing owns that); `Ok(None)` is EOF.
    pub fn next_line(&mut self) -> std::io::Result<Option<&[u8]>> {
        loop {
            if self.read_frame()? == 0 {
                return Ok(None);
            }
            if self.buf.iter().all(|b| b.is_ascii_whitespace()) {
                continue;
            }
            return Ok(Some(&self.buf));
        }
    }

    /// Client side: the final response document — parses each line,
    /// skips keep-alive `hb` lines (each read rearms any socket
    /// deadline), and maps EOF / malformed lines to typed I/O errors.
    pub fn next_reply(&mut self) -> std::io::Result<JsonValue> {
        loop {
            if self.read_frame()? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection before responding",
                ));
            }
            if self.buf.iter().all(|b| b.is_ascii_whitespace()) {
                continue;
            }
            let text = std::str::from_utf8(&self.buf).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed daemon response: {e}"),
                )
            })?;
            let doc = JsonValue::parse(text.trim()).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed daemon response: {e}"),
                )
            })?;
            if is_heartbeat(&doc) {
                continue;
            }
            return Ok(doc);
        }
    }
}

/// The writing half of the framed loop: one rendered document, one
/// newline, one flush.
pub struct FrameWriter<W: Write> {
    inner: W,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps a byte sink.
    pub fn new(inner: W) -> FrameWriter<W> {
        FrameWriter { inner }
    }

    /// Writes `doc` as one flushed NDJSON line.
    pub fn send(&mut self, doc: &JsonValue) -> std::io::Result<()> {
        let mut line = doc.render();
        line.push('\n');
        self.inner.write_all(line.as_bytes())?;
        self.inner.flush()
    }
}

/// Supervisor side of a worker stream: feeds each received line into the
/// reply channel as `Some(doc)` (parseable) or `None` (garbage — the
/// supervisor reaps on it), and drops the sender on EOF/error, which the
/// supervisor observes as `Disconnected` (the worker died).
pub fn pump_lines<R: Read>(mut reader: FrameReader<R>, tx: Sender<Option<JsonValue>>) {
    loop {
        let doc = match reader.next_line() {
            Ok(Some(line)) => {
                std::str::from_utf8(line).ok().and_then(|t| JsonValue::parse(t.trim()).ok())
            }
            Ok(None) | Err(_) => return,
        };
        if tx.send(doc).is_err() {
            return;
        }
    }
}

/// One client round-trip: connect, handshake when the transport demands
/// it (TCP), send `body` as a line, and read response lines until the
/// final (non-keep-alive) one. Read and write deadlines come from
/// [`client_timeout`], so a hung daemon surfaces as a timed-out I/O
/// error instead of blocking the client forever. A refused handshake is
/// returned as the response document (the caller maps `ok:false` to the
/// daemon's message and exit code).
pub fn request(ep: &Endpoint, body: &JsonValue) -> std::io::Result<JsonValue> {
    request_with(ep, body, client_timeout())
}

/// [`request`] with an explicit socket deadline (`None` blocks forever).
pub fn request_with(
    ep: &Endpoint,
    body: &JsonValue,
    timeout: Option<Duration>,
) -> std::io::Result<JsonValue> {
    let conn = Conn::connect(ep)?;
    conn.set_timeout(timeout)?;
    let remote = conn.is_remote();
    let (read, write, _ctl) = conn.split()?;
    let mut reader = FrameReader::new(read);
    let mut writer = FrameWriter::new(write);
    if remote {
        writer.send(&hello_request(token_from_env()))?;
        let ack = reader.next_reply()?;
        if ack.get("ok").and_then(JsonValue::as_bool) != Some(true) {
            return Ok(ack);
        }
    }
    writer.send(body)?;
    reader.next_reply()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_checks_version_then_token() {
        assert!(check_handshake(PROTO_VERSION, None, None).is_ok());
        assert!(check_handshake(PROTO_VERSION, Some("s"), Some("s")).is_ok());
        let v = check_handshake(PROTO_VERSION + 1, None, None).unwrap_err();
        assert!(v.message.contains("version mismatch"), "{}", v.message);
        let t = check_handshake(PROTO_VERSION, None, Some("s")).unwrap_err();
        assert!(t.message.contains("token"), "{}", t.message);
        let w = check_handshake(PROTO_VERSION, Some("wrong"), Some("s")).unwrap_err();
        assert!(w.message.contains("token"), "{}", w.message);
        // A version mismatch is reported even when the token also fails:
        // the peer learns the load-bearing fact first.
        let both = check_handshake(99, Some("wrong"), Some("s")).unwrap_err();
        assert!(both.message.contains("version mismatch"), "{}", both.message);
    }

    #[test]
    fn token_compare_accepts_equal_rejects_unequal() {
        assert!(token_eq("s3cret", "s3cret"));
        assert!(!token_eq("s3cret", "s3cret!"));
        assert!(!token_eq("", "s3cret"));
        assert!(!token_eq("s3crex", "s3cret"), "shared prefix must not pass");
    }

    #[test]
    fn oversized_frames_error_without_buffering_them() {
        // A newline-free byte stream longer than the cap: the reader
        // must refuse it (InvalidData) instead of buffering until a
        // newline that never comes. `repeat` yields an endless stream,
        // so finishing at all proves the cap fires mid-line.
        let endless = std::io::repeat(b'x');
        let mut reader = FrameReader::new(endless);
        let err = reader.next_line().expect_err("cap must trip");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("byte cap"), "{err}");
        // The same cap guards reply waits on the client side.
        let mut reader = FrameReader::new(std::io::repeat(b'{'));
        assert!(reader.next_reply().is_err());
        // A frame under the cap still round-trips, terminal newline or not.
        let mut reader = FrameReader::new(&b"{\"ok\":true}"[..]);
        let line = reader.next_line().expect("read").expect("one line");
        assert_eq!(line, b"{\"ok\":true}");
    }

    #[test]
    fn framing_skips_blanks_and_heartbeats() {
        let bytes = b"\n   \n{\"hb\":true}\n{\"ok\":true,\"pong\":true}\n";
        let mut reader = FrameReader::new(&bytes[..]);
        let reply = reader.next_reply().expect("final line");
        assert_eq!(reply.get("pong").and_then(JsonValue::as_bool), Some(true));
        let mut reader = FrameReader::new(&b""[..]);
        assert!(reader.next_line().expect("eof is ok").is_none());
    }

    #[test]
    fn request_encode_parse_round_trips_field_order() {
        // The encoder's field order is the byte-compat contract with the
        // pre-refactor wire: cmd first, payload fields in fixed order.
        let opts = RunOptions::default();
        assert_eq!(
            job_request("deadbeef", 3, &opts).render(),
            format!(
                "{{\"cmd\":\"job\",\"job\":\"deadbeef\",\"index\":3,\"options\":{}}}",
                opts.to_json_value().render()
            )
        );
        assert_eq!(Request::Ping.to_json_value().render(), "{\"cmd\":\"ping\"}");
        let parsed = Request::parse(job_request("deadbeef", 3, &opts).render().as_bytes())
            .expect("round trip");
        match parsed {
            Request::Job { fingerprint, index, .. } => {
                assert_eq!(fingerprint, "deadbeef");
                assert_eq!(index, 3);
            }
            other => panic!("expected job, parsed `{}`", other.name()),
        }
    }
}
