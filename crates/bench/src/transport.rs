//! The transport layer: pluggable byte streams under one wire protocol.
//!
//! [`crate::proto`] owns *what* travels on the wire (framed NDJSON,
//! deadlines, heartbeats); this module owns *where* it travels. A
//! [`Conn`] is one bidirectional byte stream — a Unix socket, a TCP
//! socket, or a child process's stdin/stdout pipe pair — and a
//! [`Listener`] accepts them, so `serve_connection` and the worker
//! supervisor are transport-blind: the same daemon loop serves a local
//! CLI over the Unix socket and a cross-machine client over TCP, and the
//! same supervision machinery drives a piped child worker and a remote
//! `xloops worker --connect` executor.
//!
//! Addresses are [`Endpoint`]s: a `tcp://HOST:PORT` string names a TCP
//! endpoint, anything else is a Unix socket path. Dial-style strings
//! (`xloops worker --connect HOST:PORT`) may omit the scheme — a
//! path-free `HOST:PORT` is TCP ([`Endpoint::parse_dial`]).
//!
//! TCP is the only transport that crosses a trust boundary
//! ([`Conn::is_remote`]): the protocol layer requires a version/token
//! handshake there, while Unix sockets (guarded by filesystem
//! permissions) and pipes (guarded by process ancestry) stay
//! handshake-optional for byte-compatibility with the pre-network wire.

use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// A daemon address: a Unix socket path or a TCP `HOST:PORT`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A filesystem socket path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7070`.
    Tcp(String),
}

impl Endpoint {
    /// Parses a listen/sock-style address: a `tcp://` scheme names a TCP
    /// endpoint, anything else is a Unix socket path.
    pub fn parse(s: &str) -> Endpoint {
        match s.strip_prefix("tcp://") {
            Some(addr) => Endpoint::Tcp(addr.to_string()),
            None => Endpoint::Unix(PathBuf::from(s)),
        }
    }

    /// Parses a dial-style address (`--connect`): like [`Endpoint::parse`],
    /// but a scheme-less `HOST:PORT` (no path separator) is TCP, so
    /// `--connect 10.0.0.2:7070` works without the `tcp://` spelling.
    pub fn parse_dial(s: &str) -> Endpoint {
        match Endpoint::parse(s) {
            Endpoint::Unix(p) if s.contains(':') && !s.contains('/') => {
                let _ = p;
                Endpoint::Tcp(s.to_string())
            }
            ep => ep,
        }
    }

    /// A Unix endpoint from a socket path.
    pub fn unix(path: impl Into<PathBuf>) -> Endpoint {
        Endpoint::Unix(path.into())
    }

    /// The address as users wrote it (TCP keeps its scheme).
    pub fn describe(&self) -> String {
        match self {
            Endpoint::Unix(p) => p.display().to_string(),
            Endpoint::Tcp(addr) => format!("tcp://{addr}"),
        }
    }
}

/// A bound accept source for one endpoint.
pub enum Listener {
    /// A Unix socket listener and the path it owns (unlinked on close).
    Unix {
        /// The bound listener.
        listener: UnixListener,
        /// The socket path, removed again by [`Listener::close`].
        path: PathBuf,
    },
    /// A TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `ep`. A dead daemon leaves its Unix socket file behind and
    /// bind would fail with `AddrInUse`; a *live* daemon holds the
    /// listener, so stale paths are probed with a connect before being
    /// clobbered.
    pub fn bind(ep: &Endpoint) -> std::io::Result<Listener> {
        match ep {
            Endpoint::Unix(path) => {
                if path.exists() {
                    if UnixStream::connect(path).is_ok() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::AddrInUse,
                            format!("a daemon is already listening on {}", path.display()),
                        ));
                    }
                    std::fs::remove_file(path)?;
                }
                Ok(Listener::Unix { listener: UnixListener::bind(path)?, path: path.clone() })
            }
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr.as_str())?)),
        }
    }

    /// Accepts the next connection.
    pub fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Unix { listener, .. } => listener.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(listener) => listener.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }

    /// The *bound* endpoint — for TCP this is the actual local address,
    /// so binding port `0` yields a connectable endpoint.
    pub fn endpoint(&self) -> Endpoint {
        match self {
            Listener::Unix { path, .. } => Endpoint::Unix(path.clone()),
            Listener::Tcp(listener) => Endpoint::Tcp(
                listener
                    .local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "0.0.0.0:0".to_string()),
            ),
        }
    }

    /// The endpoint a process on *this* machine dials to reach the
    /// listener — [`Listener::endpoint`], except that a TCP wildcard
    /// bind (`0.0.0.0` / `[::]`) is rewritten to its loopback address:
    /// connecting to an unspecified address is platform-dependent, and
    /// the daemon's shutdown poke must always land so the accept loop
    /// observes the flag and exits.
    pub fn poke_endpoint(&self) -> Endpoint {
        match self {
            Listener::Unix { path, .. } => Endpoint::Unix(path.clone()),
            Listener::Tcp(listener) => {
                let addr = listener
                    .local_addr()
                    .map(|mut a| {
                        if a.ip().is_unspecified() {
                            a.set_ip(match a.ip() {
                                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
                            });
                        }
                        a.to_string()
                    })
                    .unwrap_or_else(|_| "127.0.0.1:0".to_string());
                Endpoint::Tcp(addr)
            }
        }
    }

    /// The bound TCP address, when this is a TCP listener.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match self {
            Listener::Tcp(listener) => listener.local_addr().ok(),
            Listener::Unix { .. } => None,
        }
    }

    /// Closes the listener; a Unix socket also unlinks its path, so a
    /// clean shutdown never relies on stale-socket takeover.
    pub fn close(self) {
        if let Listener::Unix { listener, path } = self {
            drop(listener);
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One bidirectional byte stream carrying the NDJSON protocol.
pub enum Conn {
    /// A Unix-socket connection (local clients).
    Unix(UnixStream),
    /// A TCP connection (remote clients and remote workers).
    Tcp(TcpStream),
    /// A child process's pipe pair (the worker pool's spawn route).
    Pipe {
        /// The receiving half (the peer's stdout).
        read: Box<dyn Read + Send>,
        /// The sending half (the peer's stdin).
        write: Box<dyn Write + Send>,
    },
}

impl Conn {
    /// Dials `ep`.
    pub fn connect(ep: &Endpoint) -> std::io::Result<Conn> {
        match ep {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Conn::Tcp),
        }
    }

    /// Whether the peer is outside this machine's trust boundary (TCP):
    /// the protocol layer requires the version/token handshake here.
    pub fn is_remote(&self) -> bool {
        matches!(self, Conn::Tcp(_))
    }

    /// Sets the read *and* write deadline. Pipes have no socket deadline
    /// (the worker supervisor polices them with its own two clocks), so
    /// this is a no-op there.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            Conn::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            Conn::Pipe { .. } => Ok(()),
        }
    }

    /// Splits into independently owned read/write halves plus a control
    /// handle (sockets share one file description via `try_clone`, so
    /// deadlines set on any handle govern all of them).
    pub fn split(self) -> std::io::Result<SplitConn> {
        match self {
            Conn::Unix(s) => {
                let (w, c) = (s.try_clone()?, s.try_clone()?);
                Ok((Box::new(s), Box::new(w), ConnControl::Unix(c)))
            }
            Conn::Tcp(s) => {
                let (w, c) = (s.try_clone()?, s.try_clone()?);
                Ok((Box::new(s), Box::new(w), ConnControl::Tcp(c)))
            }
            Conn::Pipe { read, write } => Ok((read, write, ConnControl::Pipe)),
        }
    }
}

/// The owned halves of a split [`Conn`]: boxed reader, boxed writer, and
/// the out-of-band control handle.
pub type SplitConn = (Box<dyn Read + Send>, Box<dyn Write + Send>, ConnControl);

/// Out-of-band control over a split [`Conn`]: hang up a socket mid-read
/// (reaping a remote worker) or re-arm its deadlines after a handshake.
pub enum ConnControl {
    /// Control handle on a Unix socket.
    Unix(UnixStream),
    /// Control handle on a TCP socket.
    Tcp(TcpStream),
    /// Pipes have no control plane (drop the halves instead).
    Pipe,
}

impl ConnControl {
    /// Shuts the connection down in both directions; the peer observes
    /// EOF. No-op for pipes.
    pub fn shutdown(&self) {
        match self {
            ConnControl::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            ConnControl::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            ConnControl::Pipe => {}
        }
    }

    /// Re-arms (or clears) the socket deadlines — e.g. a remote worker
    /// dials with an ack deadline, then clears it to wait for jobs that
    /// may arrive hours later.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            ConnControl::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            ConnControl::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            ConnControl::Pipe => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing_distinguishes_schemes_paths_and_dials() {
        assert_eq!(Endpoint::parse("tcp://127.0.0.1:7070"), Endpoint::Tcp("127.0.0.1:7070".into()));
        assert_eq!(Endpoint::parse("/tmp/x.sock"), Endpoint::Unix(PathBuf::from("/tmp/x.sock")));
        // A scheme-less host:port dials TCP; anything with a path
        // separator stays a Unix path even if it contains colons.
        assert_eq!(Endpoint::parse_dial("10.0.0.2:7070"), Endpoint::Tcp("10.0.0.2:7070".into()));
        assert_eq!(
            Endpoint::parse_dial("/tmp/odd:name.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/odd:name.sock"))
        );
        assert_eq!(
            Endpoint::parse("relative.sock"),
            Endpoint::Unix(PathBuf::from("relative.sock"))
        );
        assert_eq!(Endpoint::parse_dial("tcp://h:1").describe(), "tcp://h:1");
    }

    #[test]
    fn only_tcp_is_remote() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        assert!(!Conn::Unix(a).is_remote());
        assert!(
            !Conn::Pipe { read: Box::new(b.try_clone().unwrap()), write: Box::new(b) }.is_remote()
        );
    }

    #[test]
    fn tcp_listener_round_trips_bytes_and_reports_its_bound_port() {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).expect("bind port 0");
        let ep = listener.endpoint();
        assert_ne!(ep.describe(), "tcp://127.0.0.1:0", "port 0 resolves to the real port");
        let client = std::thread::spawn(move || {
            let conn = Conn::connect(&ep).expect("dial");
            let (mut r, mut w, _ctl) = conn.split().expect("split");
            w.write_all(b"ping\n").unwrap();
            w.flush().unwrap();
            let mut buf = [0u8; 5];
            r.read_exact(&mut buf).unwrap();
            buf
        });
        let conn = listener.accept().expect("accept");
        assert!(conn.is_remote());
        let (mut r, mut w, _ctl) = conn.split().expect("split");
        let mut buf = [0u8; 5];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping\n");
        w.write_all(b"pong\n").unwrap();
        assert_eq!(&client.join().unwrap(), b"pong\n");
    }

    #[test]
    fn poke_endpoint_rewrites_wildcard_binds_to_loopback() {
        let listener = Listener::bind(&Endpoint::Tcp("0.0.0.0:0".into())).expect("bind wildcard");
        let port = listener.tcp_addr().expect("tcp").port();
        assert_eq!(listener.poke_endpoint(), Endpoint::Tcp(format!("127.0.0.1:{port}")));
        assert!(Conn::connect(&listener.poke_endpoint()).is_ok(), "poke must land");
        // An explicit loopback bind passes through untouched.
        let lo = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).expect("bind loopback");
        assert_eq!(lo.poke_endpoint(), lo.endpoint());
    }

    #[test]
    fn closing_a_unix_listener_unlinks_its_socket_file() {
        let path = std::env::temp_dir()
            .join(format!("xloops-transport-close-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let listener = Listener::bind(&Endpoint::Unix(path.clone())).expect("bind");
        assert!(path.exists());
        listener.close();
        assert!(!path.exists(), "close must unlink the socket file");
    }
}
