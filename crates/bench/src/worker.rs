//! The crash-isolation layer: a supervised multi-process worker pool.
//!
//! The scheduler historically ran every simulation as a thread inside the
//! calling process, so one aborting or wedging point could take down a
//! whole `xloops serve` daemon and every attached `--wait` client. This
//! module moves job *execution* into disposable child processes while
//! leaving job *identity and ordering* exactly where they were: the
//! parent still owns the store probe, the item-ordered result slots, and
//! the artifact render, so artifacts are byte-identical whether a job ran
//! in-process, in a worker, or across worker deaths.
//!
//! ## Wire protocol
//!
//! Each worker is an `xloops worker` child (a hidden subcommand) speaking
//! newline-delimited JSON on its stdin/stdout pipe pair — the same
//! NDJSON idiom as the serve daemon's socket protocol:
//!
//! ```text
//! parent → worker   {"cmd":"ping"}
//!                   {"cmd":"manifest","manifest":SPEC}        register a spec
//!                   {"cmd":"job","job":FP,"index":I,"options":OPTS}
//!                   {"cmd":"exit"}
//! worker → parent   {"ok":true,"pong":true}
//!                   {"ok":true,"manifest":FP}
//!                   {"ok":true,"index":I,"result":RESULT[,"exit_code":C]}
//!                   {"hb":true}                               every 250 ms
//! ```
//!
//! A job is shipped as the store-key triple — `(fingerprint, index,
//! options)`, see [`crate::job::Job`] — against a manifest registered
//! once per worker. The worker executes the point through the *same*
//! code path as an in-process run ([`Runner`] +
//! `manifest::request_point`), so diagnosis messages, stats, and
//! the rendered [`PointResult`] are bit-identical; a typed [`SimError`]
//! additionally ships its class exit code, which the parent re-wraps as
//! [`SimError::Remote`] so error documents keep their original codes.
//!
//! ## Supervision
//!
//! The parent supervises each worker with two clocks: a heartbeat line
//! every 250 ms (a worker silent past [`PoolConfig::heartbeat_grace`] is
//! presumed hung) and an optional per-attempt job deadline
//! (`XLOOPS_JOB_TIMEOUT`, default off so determinism-sensitive tests
//! never race a timer). A worker that exits (SIGKILL, abort, OOM),
//! wedges, or writes garbage is killed and reaped, and its job is retried
//! on a fresh worker after a seeded exponential backoff
//! ([`backoff_delay`]) up to [`PoolConfig::max_retries`] retries. An
//! exhausted job is quarantined through the existing lifecycle with a
//! typed [`SimError::WorkerLost`] / [`SimError::Timeout`] error document;
//! the sweep itself always completes.
//!
//! ## Degradation rule
//!
//! [`WorkerPool::spawn`] handshakes with a probe worker before the pool
//! is trusted. If the worker binary cannot be spawned or does not speak
//! the protocol (wrong executable, exec restrictions), the scheduler
//! falls back to the existing in-process threads with a warning —
//! `xloops sweep/all/serve` never regress just because process isolation
//! is unavailable.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use xloops_sim::{RunOptions, SimError, SystemStats};
use xloops_stats::JsonValue;

use crate::manifest::{request_point, ExperimentSpec, PointResult};
use crate::runner::Runner;
use crate::sched::SweepProgress;
use crate::RunResult;

/// How often a worker writes a `{"hb":true}` line.
const HEARTBEAT_PERIOD: Duration = Duration::from_millis(250);

/// Deadline for protocol acks (ping, manifest registration) — generous,
/// because only `job` execution can legitimately take long.
const ACK_DEADLINE: Duration = Duration::from_secs(30);

/// Supervision policy for a [`WorkerPool`]. Every knob here names
/// *infrastructure*, not run semantics: none of them enter
/// [`RunOptions`], store keys, or artifacts (see `sim::options`).
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Worker processes to run concurrently (`XLOOPS_WORKERS`).
    pub workers: usize,
    /// Per-attempt wall-clock deadline for one job (`XLOOPS_JOB_TIMEOUT`
    /// in ms); `None` (the default) never times a job out.
    pub job_timeout: Option<Duration>,
    /// Retries after the first attempt before a job is quarantined
    /// (`XLOOPS_MAX_RETRIES`, default 2).
    pub max_retries: u32,
    /// How long a worker may go without writing any line (heartbeat or
    /// reply) before it is presumed hung and reaped.
    pub heartbeat_grace: Duration,
    /// Base delay of the seeded exponential backoff between retries.
    pub backoff_base: Duration,
    /// The worker executable (defaults to the current executable;
    /// `XLOOPS_WORKER_EXE` overrides, e.g. for harnesses whose own binary
    /// has no `worker` subcommand).
    pub exe: PathBuf,
    /// Extra environment for spawned workers (test chaos hooks ride
    /// here so the parent process's environment stays untouched).
    pub env: Vec<(String, String)>,
}

impl PoolConfig {
    /// A pool of `workers` processes with default supervision: no job
    /// deadline, 2 retries, 10 s heartbeat grace, 25 ms backoff base.
    pub fn new(workers: usize) -> PoolConfig {
        PoolConfig {
            workers: workers.max(1),
            job_timeout: None,
            max_retries: 2,
            heartbeat_grace: Duration::from_secs(10),
            backoff_base: Duration::from_millis(25),
            exe: worker_exe(),
            env: Vec::new(),
        }
    }

    /// Reads the worker knobs from the environment: `None` unless
    /// `XLOOPS_WORKERS` is a positive count, with `XLOOPS_JOB_TIMEOUT`
    /// (ms), `XLOOPS_MAX_RETRIES`, and `XLOOPS_HEARTBEAT_GRACE` (ms)
    /// layered on top when set.
    pub fn from_env() -> Option<PoolConfig> {
        let workers: usize = std::env::var("XLOOPS_WORKERS").ok()?.trim().parse().ok()?;
        if workers == 0 {
            return None;
        }
        let mut cfg = PoolConfig::new(workers);
        cfg.job_timeout = env_ms("XLOOPS_JOB_TIMEOUT").filter(|d| !d.is_zero());
        if let Some(n) = std::env::var("XLOOPS_MAX_RETRIES").ok().and_then(|v| v.parse().ok()) {
            cfg.max_retries = n;
        }
        if let Some(grace) = env_ms("XLOOPS_HEARTBEAT_GRACE").filter(|d| !d.is_zero()) {
            cfg.heartbeat_grace = grace;
        }
        Some(cfg)
    }
}

/// A millisecond-valued environment knob; unparsable reads as unset.
fn env_ms(name: &str) -> Option<Duration> {
    std::env::var(name).ok()?.trim().parse().ok().map(Duration::from_millis)
}

/// The executable to spawn workers from.
fn worker_exe() -> PathBuf {
    std::env::var_os("XLOOPS_WORKER_EXE")
        .map(PathBuf::from)
        .or_else(|| std::env::current_exe().ok())
        .unwrap_or_else(|| PathBuf::from("xloops"))
}

/// One job as the pool ships it: the spec to register, the store-key
/// triple naming the point, and how many admitted sweep jobs this unique
/// simulation resolves (for progress accounting; deduplicated points
/// fan back out to every admitted job that aliased them).
pub struct WireJob<'a> {
    /// The owning manifest (registered once per worker per fingerprint).
    pub spec: &'a ExperimentSpec,
    /// [`ExperimentSpec::fingerprint`] of `spec`.
    pub fingerprint: String,
    /// Index into the manifest's point list.
    pub index: usize,
    /// The options the point runs under.
    pub options: &'a RunOptions,
    /// Admitted jobs this unique simulation resolves (progress weight).
    pub fanout: u64,
}

/// The pool's verdict on one [`WireJob`]: the point result exactly as an
/// in-process run would have produced it (placeholder stats plus
/// diagnosis when the point failed), the typed error class when one is
/// known, and how many attempts it took.
#[derive(Clone, Debug)]
pub struct WorkerOutcome {
    /// The point result (always present; failed points carry the
    /// diagnosis in [`PointResult::error`]).
    pub result: PointResult,
    /// The typed class behind a failure: [`SimError::Remote`] for a
    /// typed simulation error relayed from the worker,
    /// [`SimError::WorkerLost`] / [`SimError::Timeout`] for supervision
    /// failures, `None` for successes and untyped (panic) failures.
    pub sim: Option<SimError>,
    /// Attempts made (1 = first dispatch succeeded).
    pub attempts: u32,
}

/// Why an attempt on a worker was abandoned.
#[derive(Debug)]
enum Loss {
    /// The worker exited (crash, SIGKILL, OOM): its stdout hit EOF.
    Exited,
    /// The worker wrote a line that does not parse as a valid reply.
    Garbage,
    /// The worker went silent past the heartbeat grace.
    Silent,
    /// The job's per-attempt deadline expired.
    Deadline,
    /// A replacement worker could not even be spawned.
    Spawn(String),
}

impl Loss {
    fn cause(&self) -> String {
        match self {
            Loss::Exited => "worker exited".to_string(),
            Loss::Garbage => "garbage reply".to_string(),
            Loss::Silent => "heartbeat silence".to_string(),
            Loss::Deadline => "job deadline expired".to_string(),
            Loss::Spawn(e) => format!("spawn failed: {e}"),
        }
    }
}

/// One live worker child: its process, request pipe, reply channel (fed
/// by a reader thread that drops the sender on EOF), and which manifests
/// it already knows.
struct WorkerHandle {
    child: Child,
    stdin: ChildStdin,
    rx: Receiver<Option<JsonValue>>,
    known: HashSet<String>,
    last_line: Instant,
}

impl WorkerHandle {
    fn spawn(cfg: &PoolConfig) -> std::io::Result<WorkerHandle> {
        let mut child = Command::new(&cfg.exe)
            .arg("worker")
            .envs(cfg.env.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || read_lines(stdout, tx));
        Ok(WorkerHandle { child, stdin, rx, known: HashSet::new(), last_line: Instant::now() })
    }

    fn send(&mut self, doc: &JsonValue) -> std::io::Result<()> {
        let mut line = doc.render();
        line.push('\n');
        self.stdin.write_all(line.as_bytes())?;
        self.stdin.flush()
    }

    /// Waits for the next non-heartbeat reply, policing the job deadline
    /// and the heartbeat grace. Any line (heartbeat or reply) counts as
    /// proof of life.
    fn await_reply(
        &mut self,
        deadline: Option<Instant>,
        grace: Duration,
    ) -> Result<JsonValue, Loss> {
        loop {
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok(Some(doc)) => {
                    self.last_line = Instant::now();
                    if doc.get("hb").is_some() {
                        continue;
                    }
                    return Ok(doc);
                }
                Ok(None) => return Err(Loss::Garbage),
                Err(RecvTimeoutError::Disconnected) => return Err(Loss::Exited),
                Err(RecvTimeoutError::Timeout) => {}
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(Loss::Deadline);
            }
            if self.last_line.elapsed() > grace {
                return Err(Loss::Silent);
            }
        }
    }

    fn ping(&mut self, grace: Duration) -> Result<(), Loss> {
        let req = JsonValue::object(vec![("cmd", JsonValue::Str("ping".to_string()))]);
        self.send(&req).map_err(|_| Loss::Exited)?;
        let reply = self.await_reply(Some(Instant::now() + ACK_DEADLINE), grace)?;
        match reply.get("pong").and_then(JsonValue::as_bool) {
            Some(true) => Ok(()),
            _ => Err(Loss::Garbage),
        }
    }

    /// Registers the job's manifest on this worker, once per fingerprint.
    fn ensure_manifest(&mut self, job: &WireJob<'_>, grace: Duration) -> Result<(), Loss> {
        if self.known.contains(&job.fingerprint) {
            return Ok(());
        }
        let req = JsonValue::object(vec![
            ("cmd", JsonValue::Str("manifest".to_string())),
            ("manifest", job.spec.to_json_value()),
        ]);
        self.send(&req).map_err(|_| Loss::Exited)?;
        let reply = self.await_reply(Some(Instant::now() + ACK_DEADLINE), grace)?;
        if reply.get("ok").and_then(JsonValue::as_bool) != Some(true) {
            return Err(Loss::Garbage);
        }
        self.known.insert(job.fingerprint.clone());
        Ok(())
    }

    /// Ships one job and awaits its result under the per-attempt deadline.
    fn run_job(
        &mut self,
        job: &WireJob<'_>,
        cfg: &PoolConfig,
    ) -> Result<(PointResult, Option<i32>), Loss> {
        let req = JsonValue::object(vec![
            ("cmd", JsonValue::Str("job".to_string())),
            ("job", JsonValue::Str(job.fingerprint.clone())),
            ("index", JsonValue::UInt(job.index as u64)),
            ("options", job.options.to_json_value()),
        ]);
        self.send(&req).map_err(|_| Loss::Exited)?;
        let deadline = cfg.job_timeout.map(|t| Instant::now() + t);
        let reply = self.await_reply(deadline, cfg.heartbeat_grace)?;
        parse_job_reply(&reply, job.index).ok_or(Loss::Garbage)
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Feeds a worker's stdout lines into the reply channel; EOF (the worker
/// died) drops the sender, which the parent observes as `Disconnected`.
/// Unparseable lines are forwarded as `None` (garbage).
fn read_lines(stdout: ChildStdout, tx: Sender<Option<JsonValue>>) {
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        if tx.send(JsonValue::parse(line.trim()).ok()).is_err() {
            return;
        }
    }
}

/// A worker's job reply: `ok`, the echoed index, a parseable result, and
/// optionally the typed class's exit code. Anything else is garbage.
fn parse_job_reply(doc: &JsonValue, index: usize) -> Option<(PointResult, Option<i32>)> {
    if doc.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        return None;
    }
    if doc.get("index").and_then(JsonValue::as_u64) != Some(index as u64) {
        return None;
    }
    let result = PointResult::from_json_value(doc.get("result")?).ok()?;
    let exit = doc.get("exit_code").and_then(JsonValue::as_u64).map(|c| c as i32);
    Some((result, exit))
}

/// Deterministic seeded exponential backoff: FNV-1a over the job identity
/// xor the attempt, finalized with splitmix64 into a jitter factor in
/// `[0.5, 1.5)`. Two runs of the same sweep sleep the same schedule, and
/// distinct jobs spread apart instead of thundering back together.
/// Doubles per retry from `base`, capped at 2 s.
pub fn backoff_delay(base: Duration, fingerprint: &str, index: usize, attempt: u32) -> Duration {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in fingerprint.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed ^= (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    seed ^= attempt as u64;
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let jitter = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64;
    let doublings = attempt.saturating_sub(2).min(6);
    let ms = (base.as_millis() as f64 * (1u64 << doublings) as f64 * jitter).min(2_000.0);
    Duration::from_millis(ms.max(1.0) as u64)
}

/// The supervised pool: spawn-verified once, then [`WorkerPool::run`]
/// executes job lists with per-thread workers, retries, and quarantine.
pub struct WorkerPool {
    cfg: PoolConfig,
    probe: Mutex<Option<WorkerHandle>>,
}

impl WorkerPool {
    /// Spawns one probe worker and handshakes with a ping. An executable
    /// that cannot be spawned — or that does not speak the worker
    /// protocol — is an error here, *before* any job is at risk; the
    /// scheduler reacts by degrading to in-process execution.
    pub fn spawn(cfg: PoolConfig) -> std::io::Result<WorkerPool> {
        let mut probe = WorkerHandle::spawn(&cfg)?;
        if let Err(loss) = probe.ping(cfg.heartbeat_grace) {
            probe.kill();
            return Err(std::io::Error::other(format!(
                "worker handshake failed: {}",
                loss.cause()
            )));
        }
        Ok(WorkerPool { cfg, probe: Mutex::new(Some(probe)) })
    }

    /// The configured worker-process count.
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    /// Runs every job on the pool, returning outcomes in job order (the
    /// same item-ordered-slots discipline as [`crate::sched::run_jobs`],
    /// so artifact byte-identity is preserved by construction). Worker
    /// deaths cost retries, never result order; `progress` (when given)
    /// is ticked live per job with its fanout weight.
    pub fn run(
        &self,
        jobs: &[WireJob<'_>],
        progress: Option<&SweepProgress>,
    ) -> Vec<WorkerOutcome> {
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..jobs.len()).collect());
        let slots: Vec<Mutex<Option<WorkerOutcome>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let threads = self.cfg.workers.clamp(1, jobs.len().max(1));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (queue, slots, cfg) = (&queue, &slots, &self.cfg);
                // The probe worker from the spawn handshake serves the
                // first dispatcher; the rest spawn lazily on first use.
                let mut handle = if t == 0 { self.probe.lock().unwrap().take() } else { None };
                scope.spawn(move || {
                    loop {
                        let claimed = queue.lock().unwrap().pop_front();
                        let Some(i) = claimed else { break };
                        let job = &jobs[i];
                        if let Some(p) = progress {
                            p.start(job.fanout);
                        }
                        let outcome = run_with_retries(&mut handle, job, cfg);
                        if let Some(p) = progress {
                            p.finish(job.fanout, outcome.result.error.is_none());
                        }
                        *slots[i].lock().unwrap() = Some(outcome);
                    }
                    if let Some(mut h) = handle {
                        let bye = JsonValue::object(vec![("cmd", JsonValue::Str("exit".into()))]);
                        let _ = h.send(&bye);
                        h.kill();
                    }
                });
            }
        });
        slots.into_iter().map(|s| s.into_inner().unwrap().expect("pool ran every job")).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Some(mut probe) = self.probe.lock().unwrap().take() {
            probe.kill();
        }
    }
}

/// One job through the retry loop: dispatch on the current worker (spawn
/// one if needed), and on any loss reap the worker, sleep the seeded
/// backoff, and retry on a fresh one. Exhaustion quarantines the job
/// with a typed [`SimError::Timeout`] (last loss was the deadline) or
/// [`SimError::WorkerLost`] error, in the same placeholder-result shape
/// the in-process panic firewall produces.
fn run_with_retries(
    handle: &mut Option<WorkerHandle>,
    job: &WireJob<'_>,
    cfg: &PoolConfig,
) -> WorkerOutcome {
    let attempts_max = cfg.max_retries.saturating_add(1);
    let mut backoff_ms = 0u64;
    let mut attempt = 0u32;
    let mut last = Loss::Exited;
    while attempt < attempts_max {
        attempt += 1;
        if attempt > 1 {
            let delay = backoff_delay(cfg.backoff_base, &job.fingerprint, job.index, attempt);
            backoff_ms += delay.as_millis() as u64;
            std::thread::sleep(delay);
        }
        let h = match handle {
            Some(h) => h,
            None => match WorkerHandle::spawn(cfg) {
                Ok(h) => handle.insert(h),
                Err(e) => {
                    last = Loss::Spawn(e.to_string());
                    continue;
                }
            },
        };
        match h.ensure_manifest(job, cfg.heartbeat_grace).and_then(|()| h.run_job(job, cfg)) {
            Ok((result, exit_code)) => {
                let sim = match (&result.error, exit_code) {
                    (Some(message), Some(code)) => {
                        Some(SimError::Remote { message: message.clone(), exit_code: code })
                    }
                    _ => None,
                };
                return WorkerOutcome { result, sim, attempts: attempt };
            }
            Err(loss) => {
                if let Some(mut dead) = handle.take() {
                    dead.kill();
                }
                last = loss;
            }
        }
    }
    let sim = match last {
        Loss::Deadline => SimError::Timeout {
            timeout_ms: cfg.job_timeout.map_or(0, |t| t.as_millis() as u64),
            attempts: attempt,
        },
        loss => SimError::WorkerLost { cause: loss.cause(), attempts: attempt, backoff_ms },
    };
    let p = &job.spec.points[job.index];
    let what = if p.gp_lowered { "baseline" } else { "run" };
    let message = format!("{} {what} on {}: {sim}", p.kernel, p.config.resolve().name());
    let run = RunResult {
        cycles: 1,
        energy_nj: 1.0,
        stats: SystemStats::default(),
        error: Some(message),
    };
    WorkerOutcome {
        result: PointResult::from_run(&run, p.config.is_ooo()),
        sim: Some(sim),
        attempts: attempt,
    }
}

// ---------------------------------------------------------------------------
// Worker child
// ---------------------------------------------------------------------------

/// Writes one NDJSON line to stdout (locked, so the heartbeat thread and
/// the reply path never interleave mid-line). `false` means the parent
/// is gone and the worker should die.
fn emit(doc: &JsonValue) -> bool {
    let mut line = doc.render();
    line.push('\n');
    let mut out = std::io::stdout().lock();
    out.write_all(line.as_bytes()).and_then(|()| out.flush()).is_ok()
}

fn worker_refuse(message: String) -> JsonValue {
    JsonValue::object(vec![
        ("ok", JsonValue::Bool(false)),
        ("error", xloops_sim::error_doc(&message, 2)),
    ])
}

/// Entry point of the hidden `xloops worker` subcommand: reads NDJSON
/// commands from stdin, executes jobs through the exact in-process code
/// path ([`Runner`] + `request_point`), streams results back on
/// stdout, and heartbeats every 250 ms from a side thread. EOF or an
/// `exit` command ends the loop. Returns the process exit code.
pub fn worker_main() -> i32 {
    std::thread::spawn(|| loop {
        std::thread::sleep(HEARTBEAT_PERIOD);
        if !emit(&JsonValue::object(vec![("hb", JsonValue::Bool(true))])) {
            return;
        }
    });
    let mut specs: HashMap<String, ExperimentSpec> = HashMap::new();
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let mut line = String::new();
    loop {
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) | Err(_) => return 0,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let reply = match handle_worker_line(&mut specs, line.trim()) {
            Some(reply) => reply,
            None => return 0,
        };
        if !emit(&reply) {
            return 1;
        }
    }
}

/// One worker command line → one reply document (`None` = `exit`).
fn handle_worker_line(
    specs: &mut HashMap<String, ExperimentSpec>,
    line: &str,
) -> Option<JsonValue> {
    let doc = match JsonValue::parse(line) {
        Ok(d) => d,
        Err(e) => return Some(worker_refuse(format!("request is not JSON: {e}"))),
    };
    match doc.get("cmd").and_then(JsonValue::as_str) {
        Some("ping") => Some(JsonValue::object(vec![
            ("ok", JsonValue::Bool(true)),
            ("pong", JsonValue::Bool(true)),
        ])),
        Some("exit") => None,
        Some("manifest") => {
            let Some(manifest) = doc.get("manifest") else {
                return Some(worker_refuse("manifest command needs a `manifest` field".into()));
            };
            let spec = match ExperimentSpec::from_json_value(manifest) {
                Ok(s) => s,
                Err(e) => return Some(worker_refuse(format!("invalid manifest: {e}"))),
            };
            let fingerprint = spec.fingerprint();
            specs.insert(fingerprint.clone(), spec);
            Some(JsonValue::object(vec![
                ("ok", JsonValue::Bool(true)),
                ("manifest", JsonValue::Str(fingerprint)),
            ]))
        }
        Some("job") => {
            let Some(fingerprint) = doc.get("job").and_then(JsonValue::as_str) else {
                return Some(worker_refuse("job command needs a string `job` field".into()));
            };
            let Some(index) = doc.get("index").and_then(JsonValue::as_u64) else {
                return Some(worker_refuse("job command needs an `index` field".into()));
            };
            let options = match doc.get("options").and_then(RunOptions::from_json_value) {
                Some(o) => o,
                None => return Some(worker_refuse("job command needs valid `options`".into())),
            };
            let Some(spec) = specs.get(fingerprint) else {
                return Some(worker_refuse(format!("unknown manifest {fingerprint}")));
            };
            let index = index as usize;
            if index >= spec.points.len() {
                return Some(worker_refuse(format!("point index {index} out of range")));
            }
            chaos_hook(fingerprint, index);
            Some(run_wire_job(spec, index, options))
        }
        Some(other) => Some(worker_refuse(format!("unknown command `{other}`"))),
        None => Some(worker_refuse("request has no string `cmd` field".into())),
    }
}

/// Executes one point exactly as the in-process scheduler would — same
/// runner, same panic firewall semantics, same diagnosis messages — and
/// renders the reply. A typed [`SimError`] ships its class exit code so
/// the parent can preserve it in error documents.
fn run_wire_job(spec: &ExperimentSpec, index: usize, options: RunOptions) -> JsonValue {
    let p = &spec.points[index];
    let (result, exit_code) = catch_unwind(AssertUnwindSafe(|| {
        let runner = Runner::with_options(options);
        let run = request_point(&runner, p);
        let exit = runner
            .failures()
            .iter()
            .find(|f| Some(&f.message) == run.error.as_ref())
            .and_then(|f| f.sim.as_ref().map(SimError::exit_code));
        (PointResult::from_run(&run, p.config.is_ooo()), exit)
    }))
    .unwrap_or_else(|payload| {
        // A panic that escaped the runner's firewall (e.g. an unknown
        // kernel name caught before the runner executes): quarantine the
        // point, keep the worker.
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let run = RunResult {
            cycles: 1,
            energy_nj: 1.0,
            stats: SystemStats::default(),
            error: Some(message),
        };
        (PointResult::from_run(&run, p.config.is_ooo()), None)
    });
    let mut fields = vec![
        ("ok", JsonValue::Bool(true)),
        ("index", JsonValue::UInt(index as u64)),
        ("result", result.to_json_value()),
    ];
    if let Some(code) = exit_code {
        fields.push(("exit_code", JsonValue::UInt(code as u64)));
    }
    JsonValue::object(fields)
}

/// Test-only chaos hooks, consulted right before a job executes.
///
/// `XLOOPS_WORKER_CRASH=FP:INDEX[:MARKER]` SIGKILLs this worker when it
/// is about to run that point — with a `MARKER` path, only while the
/// marker file can be freshly created, so exactly the first attempt dies
/// and the retry goes through. `XLOOPS_WORKER_WEDGE=FP:INDEX` hangs the
/// job forever (still heartbeating), which only the per-job deadline can
/// detect — exercising the `Timeout` path.
fn chaos_hook(fingerprint: &str, index: usize) {
    if hook_armed("XLOOPS_WORKER_CRASH", fingerprint, index) {
        kill_self();
    }
    if hook_armed("XLOOPS_WORKER_WEDGE", fingerprint, index) {
        loop {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

fn hook_armed(var: &str, fingerprint: &str, index: usize) -> bool {
    let Ok(v) = std::env::var(var) else { return false };
    let mut parts = v.splitn(3, ':');
    let (Some(fp), Some(i)) = (parts.next(), parts.next()) else { return false };
    if fp != fingerprint || i.parse() != Ok(index) {
        return false;
    }
    match parts.next() {
        // The marker arms the hook once: create-new succeeds only the
        // first time, so retries run clean.
        Some(marker) => {
            std::fs::OpenOptions::new().write(true).create_new(true).open(marker).is_ok()
        }
        None => true,
    }
}

/// Dies by SIGKILL — no unwinding, no exit handlers, exactly the
/// `kill -9` shape the supervisor must absorb. Falls back to `abort`
/// (SIGABRT) if no shell is available to deliver the signal.
fn kill_self() -> ! {
    let pid = std::process::id().to_string();
    let _ = Command::new("sh").args(["-c", &format!("kill -9 {pid}")]).status();
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_grows_and_caps() {
        let base = Duration::from_millis(25);
        let first = backoff_delay(base, "deadbeefdeadbeef", 3, 2);
        assert_eq!(first, backoff_delay(base, "deadbeefdeadbeef", 3, 2));
        let later = backoff_delay(base, "deadbeefdeadbeef", 3, 6);
        assert!(later > first, "{later:?} vs {first:?}");
        assert!(backoff_delay(base, "deadbeefdeadbeef", 3, 40) <= Duration::from_millis(2_000));
        // Distinct jobs jitter apart (seeded by identity, not shared state).
        assert_ne!(
            backoff_delay(base, "deadbeefdeadbeef", 3, 2),
            backoff_delay(base, "deadbeefdeadbeef", 4, 2)
        );
    }

    #[test]
    fn pool_config_defaults_are_deterministic_safe() {
        let cfg = PoolConfig::new(4);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.max_retries, 2);
        // No deadline by default: determinism-sensitive tests never race
        // a timer.
        assert!(cfg.job_timeout.is_none());
        assert_eq!(PoolConfig::new(0).workers, 1);
    }

    #[test]
    fn worker_protocol_refuses_malformed_lines_without_dying() {
        let mut specs = HashMap::new();
        for bad in [
            "not json",
            "{}",
            "{\"cmd\":\"job\"}",
            "{\"cmd\":\"job\",\"job\":\"0000000000000000\",\"index\":0}",
            "{\"cmd\":\"nope\"}",
            "{\"cmd\":\"manifest\"}",
            "{\"cmd\":\"manifest\",\"manifest\":{\"bogus\":1}}",
        ] {
            let reply = handle_worker_line(&mut specs, bad).expect("refusal, not exit");
            assert_eq!(
                reply.get("ok").and_then(JsonValue::as_bool),
                Some(false),
                "{bad} must be refused: {}",
                reply.render()
            );
            let code = reply
                .get("error")
                .and_then(|e| e.get("exit_code"))
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            assert_eq!(code, 2.0, "{bad}");
        }
        // Ping and exit still work after the abuse.
        let pong = handle_worker_line(&mut specs, "{\"cmd\":\"ping\"}").unwrap();
        assert_eq!(pong.get("pong").and_then(JsonValue::as_bool), Some(true));
        assert!(handle_worker_line(&mut specs, "{\"cmd\":\"exit\"}").is_none());
    }

    #[test]
    fn manifest_then_job_round_trips_a_point_identically() {
        // Register a tiny spec and run one point through the worker-side
        // handler; the result must be byte-identical to the in-process
        // runner's answer for the same point.
        let spec = crate::experiments::spec_by_name("table2")
            .map(|mut s| {
                s.points.truncate(1);
                s.sections.clear();
                s
            })
            .expect("table2 spec exists");
        let fp = spec.fingerprint();
        let mut specs = HashMap::new();
        let req = JsonValue::object(vec![
            ("cmd", JsonValue::Str("manifest".to_string())),
            ("manifest", spec.to_json_value()),
        ]);
        let ack = handle_worker_line(&mut specs, &req.render()).unwrap();
        assert_eq!(ack.get("manifest").and_then(JsonValue::as_str), Some(fp.as_str()));

        let options = RunOptions::default();
        let req = JsonValue::object(vec![
            ("cmd", JsonValue::Str("job".to_string())),
            ("job", JsonValue::Str(fp.clone())),
            ("index", JsonValue::UInt(0)),
            ("options", options.to_json_value()),
        ]);
        let reply = handle_worker_line(&mut specs, &req.render()).unwrap();
        let (result, exit) = parse_job_reply(&reply, 0).expect("valid job reply");
        assert!(exit.is_none(), "healthy point carries no exit code");
        assert!(result.error.is_none());
        let reference = {
            let runner = Runner::with_options(options);
            let p = &spec.points[0];
            PointResult::from_run(&request_point(&runner, p), p.config.is_ooo())
        };
        assert_eq!(
            result.to_json_value().render(),
            reference.to_json_value().render(),
            "wire round-trip must be byte-identical to in-process"
        );
    }
}
