//! The crash-isolation layer: a supervised worker pool over pluggable
//! transports.
//!
//! The scheduler historically ran every simulation as a thread inside the
//! calling process, so one aborting or wedging point could take down a
//! whole `xloops serve` daemon and every attached `--wait` client. This
//! module moves job *execution* into disposable workers — spawned child
//! processes on stdin/stdout pipes, or remote `xloops worker --connect`
//! processes on TCP — while leaving job *identity and ordering* exactly
//! where they were: the parent still owns the store probe, the
//! item-ordered result slots, and the artifact render, so artifacts are
//! byte-identical whether a job ran in-process, in a child, on a remote
//! machine, or across worker deaths.
//!
//! ## Wire protocol
//!
//! Workers speak the worker half of the unified protocol
//! ([`crate::proto`]): `ping` / `manifest` / `job` / `exit` requests,
//! `{"ok":...}` replies, `{"hb":true}` heartbeats. A job is shipped as
//! the store-key triple — `(fingerprint, index, options)`, see
//! [`crate::job::Job`] — against a manifest registered once per worker.
//! The worker executes the point through the *same* code path as an
//! in-process run ([`Runner`] + `manifest::request_point`), so diagnosis
//! messages, stats, and the rendered [`PointResult`] are bit-identical; a
//! typed [`SimError`] additionally ships its class exit code, which the
//! parent re-wraps as [`SimError::Remote`] so error documents keep their
//! original codes.
//!
//! ## Supervision
//!
//! The parent supervises each worker with two clocks: a heartbeat line
//! every 250 ms (a worker silent past [`PoolConfig::heartbeat_grace`] is
//! presumed hung) and an optional per-attempt job deadline
//! (`XLOOPS_JOB_TIMEOUT`, default off so determinism-sensitive tests
//! never race a timer). A worker that exits (SIGKILL, abort, OOM),
//! wedges, or writes garbage is killed and reaped, and its job is retried
//! on a fresh worker after a seeded exponential backoff
//! ([`backoff_delay`]) up to [`PoolConfig::max_retries`] retries. An
//! exhausted job is quarantined through the existing lifecycle with a
//! typed [`SimError::WorkerLost`] / [`SimError::Timeout`] error document;
//! the sweep itself always completes.
//!
//! Remote workers inherit the whole machinery: a registered connection
//! checks out of the daemon's [`RemoteRegistry`] like a spawned child,
//! runs the same manifest-once-per-fingerprint protocol under the same
//! two clocks, and a yanked network cable is just another reaped worker —
//! the job retries (on another remote, or a local child when spawning is
//! allowed) and the artifact bytes cannot tell. Piped children heartbeat
//! unconditionally; a remote worker heartbeats only while busy, so an
//! idle registered executor writes nothing and the registry stays cheap.
//!
//! ## Degradation rule
//!
//! [`WorkerPool::spawn`] handshakes with a probe worker before the pool
//! is trusted. If the worker binary cannot be spawned or does not speak
//! the protocol (wrong executable, exec restrictions), the scheduler
//! falls back to the existing in-process threads with a warning —
//! `xloops sweep/all/serve` never regress just because process isolation
//! is unavailable.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use xloops_sim::{RunOptions, SimError, SystemStats};
use xloops_stats::JsonValue;

use crate::manifest::{request_point, ExperimentSpec, PointResult};
use crate::proto::{
    self, hb_doc, is_heartbeat, job_request, manifest_request, register_request, token_from_env,
    FrameReader, FrameWriter, Refusal, Request, ACK_DEADLINE, HEARTBEAT_PERIOD,
};
use crate::runner::Runner;
use crate::sched::SweepProgress;
use crate::transport::{Conn, ConnControl, Endpoint};
use crate::RunResult;

/// How long a dispatcher without local spawning waits for a remote worker
/// to (re)register before giving the attempt up as a spawn failure.
const REMOTE_CHECKOUT_WAIT: Duration = Duration::from_secs(1);

/// Supervision policy for a [`WorkerPool`]. Every knob here names
/// *infrastructure*, not run semantics: none of them enter
/// [`RunOptions`], store keys, or artifacts (see `sim::options`).
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Worker processes to run concurrently (`XLOOPS_WORKERS`).
    pub workers: usize,
    /// Per-attempt wall-clock deadline for one job (`XLOOPS_JOB_TIMEOUT`
    /// in ms); `None` (the default) never times a job out.
    pub job_timeout: Option<Duration>,
    /// Retries after the first attempt before a job is quarantined
    /// (`XLOOPS_MAX_RETRIES`, default 2).
    pub max_retries: u32,
    /// How long a worker may go without writing any line (heartbeat or
    /// reply) before it is presumed hung and reaped.
    pub heartbeat_grace: Duration,
    /// Base delay of the seeded exponential backoff between retries.
    pub backoff_base: Duration,
    /// The worker executable (defaults to the current executable;
    /// `XLOOPS_WORKER_EXE` overrides, e.g. for harnesses whose own binary
    /// has no `worker` subcommand).
    pub exe: PathBuf,
    /// Extra environment for spawned workers (test chaos hooks ride
    /// here so the parent process's environment stays untouched).
    pub env: Vec<(String, String)>,
    /// Whether the pool may spawn local child workers. `false` for a
    /// remotes-only pool ([`PoolConfig::for_remotes`]): lost jobs then
    /// wait up to a grace for another remote instead of forking locally.
    pub spawn_children: bool,
}

impl PoolConfig {
    /// A pool of `workers` processes with default supervision: no job
    /// deadline, 2 retries, 10 s heartbeat grace, 25 ms backoff base.
    pub fn new(workers: usize) -> PoolConfig {
        PoolConfig {
            workers: workers.max(1),
            job_timeout: None,
            max_retries: 2,
            heartbeat_grace: Duration::from_secs(10),
            backoff_base: Duration::from_millis(25),
            exe: worker_exe(),
            env: Vec::new(),
            spawn_children: true,
        }
    }

    /// A remotes-only pool sized for `workers` registered executors: no
    /// local children are ever spawned, and the supervision knobs
    /// (`XLOOPS_JOB_TIMEOUT` / `XLOOPS_MAX_RETRIES` /
    /// `XLOOPS_HEARTBEAT_GRACE`) still come from the environment.
    pub fn for_remotes(workers: usize) -> PoolConfig {
        let mut cfg = PoolConfig::new(workers);
        cfg.spawn_children = false;
        cfg.overlay_env();
        cfg
    }

    /// Reads the worker knobs from the environment: `None` unless
    /// `XLOOPS_WORKERS` is a positive count, with `XLOOPS_JOB_TIMEOUT`
    /// (ms), `XLOOPS_MAX_RETRIES`, and `XLOOPS_HEARTBEAT_GRACE` (ms)
    /// layered on top when set.
    pub fn from_env() -> Option<PoolConfig> {
        let workers: usize = std::env::var("XLOOPS_WORKERS").ok()?.trim().parse().ok()?;
        if workers == 0 {
            return None;
        }
        let mut cfg = PoolConfig::new(workers);
        cfg.overlay_env();
        Some(cfg)
    }

    fn overlay_env(&mut self) {
        self.job_timeout = env_ms("XLOOPS_JOB_TIMEOUT").filter(|d| !d.is_zero());
        if let Some(n) = std::env::var("XLOOPS_MAX_RETRIES").ok().and_then(|v| v.parse().ok()) {
            self.max_retries = n;
        }
        if let Some(grace) = env_ms("XLOOPS_HEARTBEAT_GRACE").filter(|d| !d.is_zero()) {
            self.heartbeat_grace = grace;
        }
    }
}

/// A millisecond-valued environment knob; unparsable reads as unset.
fn env_ms(name: &str) -> Option<Duration> {
    std::env::var(name).ok()?.trim().parse().ok().map(Duration::from_millis)
}

/// The executable to spawn workers from.
fn worker_exe() -> PathBuf {
    std::env::var_os("XLOOPS_WORKER_EXE")
        .map(PathBuf::from)
        .or_else(|| std::env::current_exe().ok())
        .unwrap_or_else(|| PathBuf::from("xloops"))
}

/// One job as the pool ships it: the spec to register, the store-key
/// triple naming the point, and how many admitted sweep jobs this unique
/// simulation resolves (for progress accounting; deduplicated points
/// fan back out to every admitted job that aliased them).
pub struct WireJob<'a> {
    /// The owning manifest (registered once per worker per fingerprint).
    pub spec: &'a ExperimentSpec,
    /// [`ExperimentSpec::fingerprint`] of `spec`.
    pub fingerprint: String,
    /// Index into the manifest's point list.
    pub index: usize,
    /// The options the point runs under.
    pub options: &'a RunOptions,
    /// Admitted jobs this unique simulation resolves (progress weight).
    pub fanout: u64,
}

/// The pool's verdict on one [`WireJob`]: the point result exactly as an
/// in-process run would have produced it (placeholder stats plus
/// diagnosis when the point failed), the typed error class when one is
/// known, and how many attempts it took.
#[derive(Clone, Debug)]
pub struct WorkerOutcome {
    /// The point result (always present; failed points carry the
    /// diagnosis in [`PointResult::error`]).
    pub result: PointResult,
    /// The typed class behind a failure: [`SimError::Remote`] for a
    /// typed simulation error relayed from the worker,
    /// [`SimError::WorkerLost`] / [`SimError::Timeout`] for supervision
    /// failures, `None` for successes and untyped (panic) failures.
    pub sim: Option<SimError>,
    /// Attempts made (1 = first dispatch succeeded).
    pub attempts: u32,
}

/// Why an attempt on a worker was abandoned.
#[derive(Debug)]
enum Loss {
    /// The worker exited (crash, SIGKILL, OOM, severed link): EOF.
    Exited,
    /// The worker wrote a line that does not parse as a valid reply.
    Garbage,
    /// The worker went silent past the heartbeat grace.
    Silent,
    /// The job's per-attempt deadline expired.
    Deadline,
    /// A replacement worker could not even be acquired.
    Spawn(String),
}

impl Loss {
    fn cause(&self) -> String {
        match self {
            Loss::Exited => "worker exited".to_string(),
            Loss::Garbage => "garbage reply".to_string(),
            Loss::Silent => "heartbeat silence".to_string(),
            Loss::Deadline => "job deadline expired".to_string(),
            Loss::Spawn(e) => format!("spawn failed: {e}"),
        }
    }
}

/// A registered remote executor at rest: the framed halves of its
/// connection, the control handle that can hang it up, and which
/// manifests it already knows (preserved across checkouts, so a remote
/// serves a whole sweep with one manifest registration).
pub struct RemoteHandle {
    writer: FrameWriter<Box<dyn Write + Send>>,
    control: ConnControl,
    rx: Receiver<Option<JsonValue>>,
    known: HashSet<String>,
}

impl RemoteHandle {
    /// Wraps a freshly registered connection (see
    /// [`crate::serve`]'s `register` handling).
    pub fn new(
        writer: FrameWriter<Box<dyn Write + Send>>,
        control: ConnControl,
        rx: Receiver<Option<JsonValue>>,
    ) -> RemoteHandle {
        RemoteHandle { writer, control, rx, known: HashSet::new() }
    }

    /// Whether the connection behind this handle is still up: drains any
    /// queued heartbeats; a dropped sender (EOF on the socket) or queued
    /// garbage means the remote is gone.
    fn is_live(&self) -> bool {
        loop {
            match self.rx.try_recv() {
                Ok(Some(_)) => continue,
                Ok(None) => return false,
                Err(TryRecvError::Empty) => return true,
                Err(TryRecvError::Disconnected) => return false,
            }
        }
    }
}

/// The daemon's pool of registered remote executors. Dispatchers check
/// handles out, run jobs on them, and check them back in; a handle whose
/// connection died is discarded at checkout (and its loss mid-job is just
/// another retry). The registry is shared between the accept path (which
/// registers) and every concurrently running sweep.
#[derive(Default)]
pub struct RemoteRegistry {
    idle: Mutex<VecDeque<RemoteHandle>>,
    cond: Condvar,
    /// Handles currently checked out by dispatchers — counted so
    /// `registered` (what `status` reports) includes busy workers, not
    /// just the idle queue.
    checked_out: AtomicUsize,
}

impl RemoteRegistry {
    /// An empty registry.
    pub fn new() -> RemoteRegistry {
        RemoteRegistry::default()
    }

    /// Adds a freshly registered remote worker.
    pub fn register(&self, handle: RemoteHandle) {
        self.idle.lock().unwrap().push_back(handle);
        self.cond.notify_all();
    }

    /// Returns a checked-out handle to the pool.
    pub fn checkin(&self, handle: RemoteHandle) {
        self.uncheckout();
        self.register(handle);
    }

    /// Forgets a checked-out handle whose connection died mid-job (the
    /// dispatcher killed it instead of checking it back in).
    pub fn discard(&self) {
        self.uncheckout();
    }

    fn uncheckout(&self) {
        let _ = self.checked_out.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            Some(n.saturating_sub(1))
        });
    }

    /// How many idle remote workers are registered right now.
    pub fn available(&self) -> usize {
        self.idle.lock().unwrap().len()
    }

    /// How many remote workers the daemon believes are connected: the
    /// idle queue plus handles checked out by running sweeps — the
    /// count `status` reports, so busy workers don't read as zero.
    pub fn registered(&self) -> usize {
        self.idle.lock().unwrap().len() + self.checked_out.load(Ordering::SeqCst)
    }

    /// Checks out an idle live handle, waiting up to `wait` for one to
    /// register or check back in. Dead handles found on the way are
    /// discarded.
    fn checkout(&self, wait: Duration) -> Option<RemoteHandle> {
        let deadline = Instant::now() + wait;
        let mut idle = self.idle.lock().unwrap();
        loop {
            while let Some(handle) = idle.pop_front() {
                if handle.is_live() {
                    self.checked_out.fetch_add(1, Ordering::SeqCst);
                    return Some(handle);
                }
                handle.control.shutdown();
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            idle = self.cond.wait_timeout(idle, left).unwrap().0;
        }
    }
}

/// What carries a live worker's bytes: a spawned child process (pipes) or
/// a checked-out remote connection (its control handle).
enum Link {
    Child(Child),
    Remote(ConnControl),
}

/// One live worker: its link, framed request writer, reply channel (fed
/// by a pump thread that drops the sender on EOF), which manifests it
/// already knows, and its liveness clock.
struct WorkerHandle {
    link: Link,
    writer: FrameWriter<Box<dyn Write + Send>>,
    rx: Receiver<Option<JsonValue>>,
    known: HashSet<String>,
    last_line: Instant,
}

impl WorkerHandle {
    fn spawn(cfg: &PoolConfig) -> std::io::Result<WorkerHandle> {
        let mut child = Command::new(&cfg.exe)
            .arg("worker")
            // A daemon's own dial-out knob must never leak into its
            // children: a spawned child serves its pipes, full stop.
            .env_remove("XLOOPS_CONNECT")
            .envs(cfg.env.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || proto::pump_lines(FrameReader::new(stdout), tx));
        Ok(WorkerHandle {
            link: Link::Child(child),
            writer: FrameWriter::new(Box::new(stdin)),
            rx,
            known: HashSet::new(),
            last_line: Instant::now(),
        })
    }

    /// Adopts a checked-out remote executor, keeping its manifest set.
    fn from_remote(remote: RemoteHandle) -> WorkerHandle {
        WorkerHandle {
            link: Link::Remote(remote.control),
            writer: remote.writer,
            rx: remote.rx,
            known: remote.known,
            last_line: Instant::now(),
        }
    }

    /// Releases a healthy remote back to handle form; `None` for
    /// children (they are exited and reaped instead).
    fn into_remote(self) -> Option<RemoteHandle> {
        match self.link {
            Link::Remote(control) => {
                Some(RemoteHandle { writer: self.writer, control, rx: self.rx, known: self.known })
            }
            Link::Child(_) => None,
        }
    }

    fn is_remote(&self) -> bool {
        matches!(self.link, Link::Remote(_))
    }

    fn send(&mut self, doc: &JsonValue) -> std::io::Result<()> {
        self.writer.send(doc)
    }

    /// Waits for the next non-heartbeat reply, policing the job deadline
    /// and the heartbeat grace. Any line (heartbeat or reply) counts as
    /// proof of life.
    fn await_reply(
        &mut self,
        deadline: Option<Instant>,
        grace: Duration,
    ) -> Result<JsonValue, Loss> {
        loop {
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok(Some(doc)) => {
                    self.last_line = Instant::now();
                    if is_heartbeat(&doc) {
                        continue;
                    }
                    return Ok(doc);
                }
                Ok(None) => return Err(Loss::Garbage),
                Err(RecvTimeoutError::Disconnected) => return Err(Loss::Exited),
                Err(RecvTimeoutError::Timeout) => {}
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(Loss::Deadline);
            }
            if self.last_line.elapsed() > grace {
                return Err(Loss::Silent);
            }
        }
    }

    fn ping(&mut self, grace: Duration) -> Result<(), Loss> {
        self.send(&Request::Ping.to_json_value()).map_err(|_| Loss::Exited)?;
        let reply = self.await_reply(Some(Instant::now() + ACK_DEADLINE), grace)?;
        match reply.get("pong").and_then(JsonValue::as_bool) {
            Some(true) => Ok(()),
            _ => Err(Loss::Garbage),
        }
    }

    /// Registers the job's manifest on this worker, once per fingerprint.
    fn ensure_manifest(&mut self, job: &WireJob<'_>, grace: Duration) -> Result<(), Loss> {
        if self.known.contains(&job.fingerprint) {
            return Ok(());
        }
        self.send(&manifest_request(job.spec)).map_err(|_| Loss::Exited)?;
        let reply = self.await_reply(Some(Instant::now() + ACK_DEADLINE), grace)?;
        if reply.get("ok").and_then(JsonValue::as_bool) != Some(true) {
            return Err(Loss::Garbage);
        }
        self.known.insert(job.fingerprint.clone());
        Ok(())
    }

    /// Ships one job and awaits its result under the per-attempt deadline.
    fn run_job(
        &mut self,
        job: &WireJob<'_>,
        cfg: &PoolConfig,
    ) -> Result<(PointResult, Option<i32>), Loss> {
        self.send(&job_request(&job.fingerprint, job.index, job.options))
            .map_err(|_| Loss::Exited)?;
        let deadline = cfg.job_timeout.map(|t| Instant::now() + t);
        let reply = self.await_reply(deadline, cfg.heartbeat_grace)?;
        parse_job_reply(&reply, job.index).ok_or(Loss::Garbage)
    }

    /// Destroys the worker: a child is killed and reaped; a remote's
    /// connection is hung up (the remote process survives and may
    /// re-register — that is its supervisor's business, not ours).
    fn kill(&mut self) {
        match &mut self.link {
            Link::Child(child) => {
                let _ = child.kill();
                let _ = child.wait();
            }
            Link::Remote(control) => control.shutdown(),
        }
    }
}

/// A worker's job reply: `ok`, the echoed index, a parseable result, and
/// optionally the typed class's exit code. Anything else is garbage.
fn parse_job_reply(doc: &JsonValue, index: usize) -> Option<(PointResult, Option<i32>)> {
    if doc.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        return None;
    }
    if doc.get("index").and_then(JsonValue::as_u64) != Some(index as u64) {
        return None;
    }
    let result = PointResult::from_json_value(doc.get("result")?).ok()?;
    let exit = doc.get("exit_code").and_then(JsonValue::as_u64).map(|c| c as i32);
    Some((result, exit))
}

/// Deterministic seeded exponential backoff: FNV-1a over the job identity
/// xor the attempt, finalized with splitmix64 into a jitter factor in
/// `[0.5, 1.5)`. Two runs of the same sweep sleep the same schedule, and
/// distinct jobs spread apart instead of thundering back together.
/// Doubles per retry from `base`, capped at 2 s.
pub fn backoff_delay(base: Duration, fingerprint: &str, index: usize, attempt: u32) -> Duration {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in fingerprint.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed ^= (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    seed ^= attempt as u64;
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let jitter = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64;
    let doublings = attempt.saturating_sub(2).min(6);
    let ms = (base.as_millis() as f64 * (1u64 << doublings) as f64 * jitter).min(2_000.0);
    Duration::from_millis(ms.max(1.0) as u64)
}

/// The supervised pool: spawn-verified once, then [`WorkerPool::run`]
/// executes job lists with per-thread workers, retries, and quarantine.
/// With a [`RemoteRegistry`] attached, registered remote executors are
/// preferred over spawning children (and are the only route when the
/// config forbids children).
pub struct WorkerPool {
    cfg: PoolConfig,
    probe: Mutex<Option<WorkerHandle>>,
    remotes: Option<Arc<RemoteRegistry>>,
}

impl WorkerPool {
    /// Spawns one probe worker and handshakes with a ping. An executable
    /// that cannot be spawned — or that does not speak the worker
    /// protocol (wrong executable, exec restrictions) — is an error here,
    /// *before* any job is at risk; the scheduler reacts by degrading to
    /// in-process execution.
    pub fn spawn(cfg: PoolConfig) -> std::io::Result<WorkerPool> {
        WorkerPool::spawn_with(cfg, None)
    }

    /// [`WorkerPool::spawn`] with a remote registry: when registered
    /// remote workers exist, the pool is trusted without a local probe
    /// (their register handshake already vouched for them); otherwise a
    /// child-spawning config probes as usual, and a remotes-only config
    /// with nobody registered is an error (degrade to in-process).
    pub fn spawn_with(
        cfg: PoolConfig,
        remotes: Option<Arc<RemoteRegistry>>,
    ) -> std::io::Result<WorkerPool> {
        if remotes.as_ref().is_some_and(|r| r.available() > 0) {
            return Ok(WorkerPool { cfg, probe: Mutex::new(None), remotes });
        }
        if !cfg.spawn_children {
            return Err(std::io::Error::other("no remote workers connected"));
        }
        let mut probe = WorkerHandle::spawn(&cfg)?;
        if let Err(loss) = probe.ping(cfg.heartbeat_grace) {
            probe.kill();
            return Err(std::io::Error::other(format!(
                "worker handshake failed: {}",
                loss.cause()
            )));
        }
        Ok(WorkerPool { cfg, probe: Mutex::new(Some(probe)), remotes })
    }

    /// The configured worker-process count.
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    /// Runs every job on the pool, returning outcomes in job order (the
    /// same item-ordered-slots discipline as [`crate::sched::run_jobs`],
    /// so artifact byte-identity is preserved by construction). Worker
    /// deaths cost retries, never result order; `progress` (when given)
    /// is ticked live per job with its fanout weight.
    pub fn run(
        &self,
        jobs: &[WireJob<'_>],
        progress: Option<&SweepProgress>,
    ) -> Vec<WorkerOutcome> {
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..jobs.len()).collect());
        let slots: Vec<Mutex<Option<WorkerOutcome>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let width = self.cfg.workers.max(self.remotes.as_ref().map_or(0, |r| r.available()));
        let threads = width.clamp(1, jobs.len().max(1));
        let remotes = self.remotes.as_deref();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (queue, slots, cfg) = (&queue, &slots, &self.cfg);
                // The probe worker from the spawn handshake serves the
                // first dispatcher; the rest acquire lazily on first use.
                let mut handle = if t == 0 { self.probe.lock().unwrap().take() } else { None };
                scope.spawn(move || {
                    loop {
                        let claimed = queue.lock().unwrap().pop_front();
                        let Some(i) = claimed else { break };
                        let job = &jobs[i];
                        if let Some(p) = progress {
                            p.start(job.fanout);
                        }
                        let outcome = run_with_retries(&mut handle, job, cfg, remotes);
                        if let Some(p) = progress {
                            p.finish(job.fanout, outcome.result.error.is_none());
                        }
                        *slots[i].lock().unwrap() = Some(outcome);
                    }
                    if let Some(h) = handle {
                        retire(h, remotes);
                    }
                });
            }
        });
        slots.into_iter().map(|s| s.into_inner().unwrap().expect("pool ran every job")).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Some(mut probe) = self.probe.lock().unwrap().take() {
            probe.kill();
        }
    }
}

/// Releases a dispatcher's worker at the end of a run: a healthy remote
/// checks back into the registry for the next sweep; a child is asked to
/// exit and reaped.
fn retire(mut handle: WorkerHandle, remotes: Option<&RemoteRegistry>) {
    if handle.is_remote() {
        match remotes {
            Some(registry) => {
                if let Some(remote) = handle.into_remote() {
                    registry.checkin(remote);
                }
            }
            None => handle.kill(),
        }
        return;
    }
    let _ = handle.send(&Request::Exit.to_json_value());
    handle.kill();
}

/// Acquires a worker for a dispatcher: a registered remote first (waiting
/// out a re-register window when children are forbidden), then a spawned
/// child when the config allows one.
fn acquire(cfg: &PoolConfig, remotes: Option<&RemoteRegistry>) -> Result<WorkerHandle, String> {
    if let Some(registry) = remotes {
        let wait = if cfg.spawn_children { Duration::ZERO } else { REMOTE_CHECKOUT_WAIT };
        if let Some(remote) = registry.checkout(wait) {
            return Ok(WorkerHandle::from_remote(remote));
        }
        if !cfg.spawn_children {
            return Err("no remote workers available".to_string());
        }
    }
    if !cfg.spawn_children {
        return Err("no remote workers connected".to_string());
    }
    WorkerHandle::spawn(cfg).map_err(|e| e.to_string())
}

/// One job through the retry loop: dispatch on the current worker
/// (acquire one if needed), and on any loss reap the worker, sleep the
/// seeded backoff, and retry on a fresh one. Exhaustion quarantines the
/// job with a typed [`SimError::Timeout`] (last loss was the deadline) or
/// [`SimError::WorkerLost`] error, in the same placeholder-result shape
/// the in-process panic firewall produces. A remotes-only pool whose
/// registry is empty even after the checkout wait does not quarantine:
/// the dispatcher degrades to [`run_job_in_process`] — slower, never
/// wrong — since a fleet that disconnected is an infrastructure outage,
/// not a defect of the point.
fn run_with_retries(
    handle: &mut Option<WorkerHandle>,
    job: &WireJob<'_>,
    cfg: &PoolConfig,
    remotes: Option<&RemoteRegistry>,
) -> WorkerOutcome {
    let attempts_max = cfg.max_retries.saturating_add(1);
    let mut backoff_ms = 0u64;
    let mut attempt = 0u32;
    let mut last = Loss::Exited;
    while attempt < attempts_max {
        attempt += 1;
        if attempt > 1 {
            let delay = backoff_delay(cfg.backoff_base, &job.fingerprint, job.index, attempt);
            backoff_ms += delay.as_millis() as u64;
            std::thread::sleep(delay);
        }
        let h = match handle {
            Some(h) => h,
            None => match acquire(cfg, remotes) {
                Ok(h) => handle.insert(h),
                Err(e) => {
                    if !cfg.spawn_children {
                        // No remote came back within the checkout wait
                        // and children are forbidden: retries cannot
                        // succeed until a worker re-registers, so run
                        // the point here instead of quarantining it.
                        eprintln!("xloops: {e}; running point {} in-process", job.index);
                        return run_job_in_process(job, attempt);
                    }
                    last = Loss::Spawn(e);
                    continue;
                }
            },
        };
        match h.ensure_manifest(job, cfg.heartbeat_grace).and_then(|()| h.run_job(job, cfg)) {
            Ok((result, exit_code)) => {
                let sim = match (&result.error, exit_code) {
                    (Some(message), Some(code)) => {
                        Some(SimError::Remote { message: message.clone(), exit_code: code })
                    }
                    _ => None,
                };
                return WorkerOutcome { result, sim, attempts: attempt };
            }
            Err(loss) => {
                if let Some(mut dead) = handle.take() {
                    let was_remote = dead.is_remote();
                    dead.kill();
                    // A reaped remote leaves the registry's books too,
                    // or `registered` would count ghosts forever.
                    if was_remote {
                        if let Some(registry) = remotes {
                            registry.discard();
                        }
                    }
                }
                last = loss;
            }
        }
    }
    let sim = match last {
        Loss::Deadline => SimError::Timeout {
            timeout_ms: cfg.job_timeout.map_or(0, |t| t.as_millis() as u64),
            attempts: attempt,
        },
        loss => SimError::WorkerLost { cause: loss.cause(), attempts: attempt, backoff_ms },
    };
    let p = &job.spec.points[job.index];
    let what = if p.gp_lowered { "baseline" } else { "run" };
    let message = format!("{} {what} on {}: {sim}", p.kernel, p.config.resolve().name());
    let run = RunResult {
        cycles: 1,
        energy_nj: 1.0,
        stats: SystemStats::default(),
        error: Some(message),
    };
    WorkerOutcome {
        result: PointResult::from_run(&run, p.config.is_ooo()),
        sim: Some(sim),
        attempts: attempt,
    }
}

/// The degradation terminus of a remotes-only pool: the dispatcher runs
/// the point itself through the exact worker executor — same runner, same
/// panic firewall, same diagnosis messages, same bytes — so a vanished
/// remote fleet costs throughput, never correctness.
fn run_job_in_process(job: &WireJob<'_>, attempts: u32) -> WorkerOutcome {
    let doc = run_wire_job(job.spec, job.index, job.options.clone());
    let (result, exit_code) =
        parse_job_reply(&doc, job.index).expect("in-process replies are well-formed");
    let sim = match (&result.error, exit_code) {
        (Some(message), Some(code)) => {
            Some(SimError::Remote { message: message.clone(), exit_code: code })
        }
        _ => None,
    };
    WorkerOutcome { result, sim, attempts }
}

// ---------------------------------------------------------------------------
// Worker child
// ---------------------------------------------------------------------------

fn worker_refuse(message: String) -> JsonValue {
    Refusal::new(message).to_json_value()
}

/// Entry point of the hidden `xloops worker` subcommand: serves the
/// worker protocol on its stdin/stdout pipe pair, heartbeating
/// unconditionally (the pre-network wire contract). EOF or an `exit`
/// command ends the loop. Returns the process exit code.
pub fn worker_main() -> i32 {
    let mut reader = FrameReader::new(std::io::stdin());
    let writer = Mutex::new(FrameWriter::new(std::io::stdout()));
    worker_serve(&mut reader, &writer, true)
}

/// Entry point of `xloops worker --connect ADDR`: dials the daemon,
/// registers as a remote executor (version/token handshake), then serves
/// the same worker protocol over the socket — heartbeating only while
/// busy, so an idle registered worker writes nothing. Returns the exit
/// code on a served-out connection, or `(code, message)` when the dial or
/// the handshake fails (`2` for a typed refusal — wrong version or
/// token — `1` for transport errors).
pub fn worker_connect(addr: &str) -> Result<i32, (i32, String)> {
    let ep = Endpoint::parse_dial(addr);
    let conn =
        Conn::connect(&ep).map_err(|e| (1, format!("cannot connect to {}: {e}", ep.describe())))?;
    conn.set_timeout(Some(ACK_DEADLINE)).map_err(|e| (1, e.to_string()))?;
    let (read, write, control) = conn.split().map_err(|e| (1, e.to_string()))?;
    let mut reader = FrameReader::new(read);
    let writer = Mutex::new(FrameWriter::new(write));
    writer
        .lock()
        .unwrap()
        .send(&register_request(token_from_env()))
        .map_err(|e| (1, format!("cannot register with {}: {e}", ep.describe())))?;
    let ack = reader
        .next_reply()
        .map_err(|e| (1, format!("no register ack from {}: {e}", ep.describe())))?;
    if ack.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        let message = ack
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(JsonValue::as_str)
            .unwrap_or("register refused")
            .to_string();
        return Err((2, message));
    }
    // Registered: jobs may arrive hours apart, so the ack deadline comes
    // off and the daemon's two clocks own liveness from here.
    control.set_timeout(None).map_err(|e| (1, e.to_string()))?;
    Ok(worker_serve(&mut reader, &writer, false))
}

/// The worker protocol loop shared by both entry points: framed requests
/// in, framed replies out, a scoped heartbeat thread alongside. With
/// `hb_always` the heartbeat runs unconditionally (piped children — the
/// byte-compatible pre-network behavior); without it, only while a
/// request is being served (remote workers — an idle one stays silent).
fn worker_serve<R: Read, W: Write + Send>(
    reader: &mut FrameReader<R>,
    writer: &Mutex<FrameWriter<W>>,
    hb_always: bool,
) -> i32 {
    let stop = AtomicBool::new(false);
    let busy = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| loop {
            std::thread::sleep(HEARTBEAT_PERIOD);
            if stop.load(Ordering::SeqCst) {
                return;
            }
            if !(hb_always || busy.load(Ordering::SeqCst)) {
                continue;
            }
            if writer.lock().unwrap().send(&hb_doc()).is_err() {
                return;
            }
        });
        let code = worker_loop(reader, writer, &busy);
        stop.store(true, Ordering::SeqCst);
        code
    })
}

fn worker_loop<R: Read, W: Write>(
    reader: &mut FrameReader<R>,
    writer: &Mutex<FrameWriter<W>>,
    busy: &AtomicBool,
) -> i32 {
    let mut specs: HashMap<String, ExperimentSpec> = HashMap::new();
    loop {
        let parsed = match reader.next_line() {
            Ok(Some(line)) => Request::parse(line),
            Ok(None) | Err(_) => return 0,
        };
        busy.store(true, Ordering::SeqCst);
        let reply = match parsed {
            Ok(req) => handle_worker_request(&mut specs, req),
            Err(refusal) => Some(refusal.to_json_value()),
        };
        busy.store(false, Ordering::SeqCst);
        let Some(reply) = reply else { return 0 };
        if writer.lock().unwrap().send(&reply).is_err() {
            return 1;
        }
    }
}

/// One worker request → one reply document (`None` = `exit`). The
/// daemon-half commands are refused — they belong on a daemon connection.
fn handle_worker_request(
    specs: &mut HashMap<String, ExperimentSpec>,
    req: Request,
) -> Option<JsonValue> {
    match req {
        Request::Ping => Some(JsonValue::object(vec![
            ("ok", JsonValue::Bool(true)),
            ("pong", JsonValue::Bool(true)),
        ])),
        Request::Exit => None,
        Request::Manifest { spec } => {
            let fingerprint = spec.fingerprint();
            specs.insert(fingerprint.clone(), *spec);
            Some(JsonValue::object(vec![
                ("ok", JsonValue::Bool(true)),
                ("manifest", JsonValue::Str(fingerprint)),
            ]))
        }
        Request::Job { fingerprint, index, options } => {
            let Some(spec) = specs.get(&fingerprint) else {
                return Some(worker_refuse(format!("unknown manifest {fingerprint}")));
            };
            if index >= spec.points.len() {
                return Some(worker_refuse(format!("point index {index} out of range")));
            }
            chaos_hook(&fingerprint, index);
            Some(run_wire_job(spec, index, *options))
        }
        req => Some(worker_refuse(format!("command `{}` is not a worker request", req.name()))),
    }
}

/// Executes one point exactly as the in-process scheduler would — same
/// runner, same panic firewall semantics, same diagnosis messages — and
/// renders the reply. A typed [`SimError`] ships its class exit code so
/// the parent can preserve it in error documents.
fn run_wire_job(spec: &ExperimentSpec, index: usize, options: RunOptions) -> JsonValue {
    let p = &spec.points[index];
    let (result, exit_code) = catch_unwind(AssertUnwindSafe(|| {
        let runner = Runner::with_options(options);
        let run = request_point(&runner, p);
        let exit = runner
            .failures()
            .iter()
            .find(|f| Some(&f.message) == run.error.as_ref())
            .and_then(|f| f.sim.as_ref().map(SimError::exit_code));
        (PointResult::from_run(&run, p.config.is_ooo()), exit)
    }))
    .unwrap_or_else(|payload| {
        // A panic that escaped the runner's firewall (e.g. an unknown
        // kernel name caught before the runner executes): quarantine the
        // point, keep the worker.
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let run = RunResult {
            cycles: 1,
            energy_nj: 1.0,
            stats: SystemStats::default(),
            error: Some(message),
        };
        (PointResult::from_run(&run, p.config.is_ooo()), None)
    });
    let mut fields = vec![
        ("ok", JsonValue::Bool(true)),
        ("index", JsonValue::UInt(index as u64)),
        ("result", result.to_json_value()),
    ];
    if let Some(code) = exit_code {
        fields.push(("exit_code", JsonValue::UInt(code as u64)));
    }
    JsonValue::object(fields)
}

/// Test-only chaos hooks, consulted right before a job executes.
///
/// `XLOOPS_WORKER_CRASH=FP:INDEX[:MARKER]` SIGKILLs this worker when it
/// is about to run that point — with a `MARKER` path, only while the
/// marker file can be freshly created, so exactly the first attempt dies
/// and the retry goes through. `XLOOPS_WORKER_WEDGE=FP:INDEX` hangs the
/// job forever (still heartbeating), which only the per-job deadline can
/// detect — exercising the `Timeout` path.
fn chaos_hook(fingerprint: &str, index: usize) {
    if hook_armed("XLOOPS_WORKER_CRASH", fingerprint, index) {
        kill_self();
    }
    if hook_armed("XLOOPS_WORKER_WEDGE", fingerprint, index) {
        loop {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

fn hook_armed(var: &str, fingerprint: &str, index: usize) -> bool {
    let Ok(v) = std::env::var(var) else { return false };
    let mut parts = v.splitn(3, ':');
    let (Some(fp), Some(i)) = (parts.next(), parts.next()) else { return false };
    if fp != fingerprint || i.parse() != Ok(index) {
        return false;
    }
    match parts.next() {
        // The marker arms the hook once: create-new succeeds only the
        // first time, so retries run clean.
        Some(marker) => {
            std::fs::OpenOptions::new().write(true).create_new(true).open(marker).is_ok()
        }
        None => true,
    }
}

/// Dies by SIGKILL — no unwinding, no exit handlers, exactly the
/// `kill -9` shape the supervisor must absorb. Falls back to `abort`
/// (SIGABRT) if no shell is available to deliver the signal.
fn kill_self() -> ! {
    let pid = std::process::id().to_string();
    let _ = Command::new("sh").args(["-c", &format!("kill -9 {pid}")]).status();
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One line through the worker half, as the serve loop would route it.
    fn handle_worker_line(
        specs: &mut HashMap<String, ExperimentSpec>,
        line: &str,
    ) -> Option<JsonValue> {
        match Request::parse(line.as_bytes()) {
            Ok(req) => handle_worker_request(specs, req),
            Err(refusal) => Some(refusal.to_json_value()),
        }
    }

    #[test]
    fn backoff_is_deterministic_grows_and_caps() {
        let base = Duration::from_millis(25);
        let first = backoff_delay(base, "deadbeefdeadbeef", 3, 2);
        assert_eq!(first, backoff_delay(base, "deadbeefdeadbeef", 3, 2));
        let later = backoff_delay(base, "deadbeefdeadbeef", 3, 6);
        assert!(later > first, "{later:?} vs {first:?}");
        assert!(backoff_delay(base, "deadbeefdeadbeef", 3, 40) <= Duration::from_millis(2_000));
        // Distinct jobs jitter apart (seeded by identity, not shared state).
        assert_ne!(
            backoff_delay(base, "deadbeefdeadbeef", 3, 2),
            backoff_delay(base, "deadbeefdeadbeef", 4, 2)
        );
    }

    #[test]
    fn pool_config_defaults_are_deterministic_safe() {
        let cfg = PoolConfig::new(4);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.max_retries, 2);
        assert!(cfg.spawn_children);
        // No deadline by default: determinism-sensitive tests never race
        // a timer.
        assert!(cfg.job_timeout.is_none());
        assert_eq!(PoolConfig::new(0).workers, 1);
        assert!(!PoolConfig::for_remotes(2).spawn_children);
    }

    #[test]
    fn worker_half_refuses_worker_state_errors_and_misrouted_commands() {
        // The byte-level malformed-input contract now lives in the
        // unified codec (see `tests/proto_codec.rs`); this pins the
        // worker-side *state* checks and the misrouted-command refusals.
        let mut specs = HashMap::new();
        let opts = RunOptions::default().to_json_value().render();
        for bad in [
            format!(
                "{{\"cmd\":\"job\",\"job\":\"0000000000000000\",\"index\":0,\"options\":{opts}}}"
            ),
            "{\"cmd\":\"shutdown\"}".to_string(),
            "{\"cmd\":\"status\"}".to_string(),
        ] {
            let reply = handle_worker_line(&mut specs, &bad).expect("refusal, not exit");
            assert_eq!(
                reply.get("ok").and_then(JsonValue::as_bool),
                Some(false),
                "{bad} must be refused: {}",
                reply.render()
            );
            let code = reply
                .get("error")
                .and_then(|e| e.get("exit_code"))
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            assert_eq!(code, 2.0, "{bad}");
        }
        // Ping and exit still work after the abuse.
        let pong = handle_worker_line(&mut specs, "{\"cmd\":\"ping\"}").unwrap();
        assert_eq!(pong.get("pong").and_then(JsonValue::as_bool), Some(true));
        assert!(handle_worker_line(&mut specs, "{\"cmd\":\"exit\"}").is_none());
    }

    #[test]
    fn manifest_then_job_round_trips_a_point_identically() {
        // Register a tiny spec and run one point through the worker-side
        // handler; the result must be byte-identical to the in-process
        // runner's answer for the same point.
        let spec = crate::experiments::spec_by_name("table2")
            .map(|mut s| {
                s.points.truncate(1);
                s.sections.clear();
                s
            })
            .expect("table2 spec exists");
        let fp = spec.fingerprint();
        let mut specs = HashMap::new();
        let ack = handle_worker_line(&mut specs, &manifest_request(&spec).render()).unwrap();
        assert_eq!(ack.get("manifest").and_then(JsonValue::as_str), Some(fp.as_str()));

        let options = RunOptions::default();
        let reply =
            handle_worker_line(&mut specs, &job_request(&fp, 0, &options).render()).unwrap();
        let (result, exit) = parse_job_reply(&reply, 0).expect("valid job reply");
        assert!(exit.is_none(), "healthy point carries no exit code");
        assert!(result.error.is_none());
        let reference = {
            let runner = Runner::with_options(options);
            let p = &spec.points[0];
            PointResult::from_run(&request_point(&runner, p), p.config.is_ooo())
        };
        assert_eq!(
            result.to_json_value().render(),
            reference.to_json_value().render(),
            "wire round-trip must be byte-identical to in-process"
        );
    }

    #[test]
    fn remote_registry_checkout_discards_dead_handles() {
        use std::os::unix::net::UnixStream;
        let registry = RemoteRegistry::new();
        assert_eq!(registry.available(), 0);
        assert!(registry.checkout(Duration::from_millis(10)).is_none());

        // A live socketpair-backed handle checks out and back in.
        let (a, b) = UnixStream::pair().expect("socketpair");
        let conn = Conn::Unix(a);
        let (read, write, control) = conn.split().expect("split");
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || proto::pump_lines(FrameReader::new(read), tx));
        registry.register(RemoteHandle::new(FrameWriter::new(write), control, rx));
        assert_eq!(registry.available(), 1);
        assert_eq!(registry.registered(), 1);
        let handle = registry.checkout(Duration::from_millis(10)).expect("live handle");
        // Checked out: no longer idle, but still a registered worker —
        // this is the count `status` reports mid-sweep.
        assert_eq!(registry.available(), 0);
        assert_eq!(registry.registered(), 1);
        registry.checkin(handle);
        assert_eq!(registry.registered(), 1);

        // Sever the peer: the pump thread drops its sender and the next
        // checkout discards the dead handle instead of returning it.
        drop(b);
        std::thread::sleep(Duration::from_millis(50));
        assert!(registry.checkout(Duration::from_millis(10)).is_none());
        assert_eq!(registry.available(), 0);
        assert_eq!(registry.registered(), 0);
    }

    #[test]
    fn remote_registry_discard_forgets_a_checked_out_handle() {
        use std::os::unix::net::UnixStream;
        let registry = RemoteRegistry::new();
        let (a, _b) = UnixStream::pair().expect("socketpair");
        let (read, write, control) = Conn::Unix(a).split().expect("split");
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || proto::pump_lines(FrameReader::new(read), tx));
        registry.register(RemoteHandle::new(FrameWriter::new(write), control, rx));
        let handle = registry.checkout(Duration::from_millis(10)).expect("live handle");
        assert_eq!(registry.registered(), 1);
        // The dispatcher reaps the handle mid-job instead of checking
        // it back in; the registry's books must not count a ghost.
        drop(handle);
        registry.discard();
        assert_eq!(registry.registered(), 0);
        // Defensive floor: a stray discard never underflows.
        registry.discard();
        assert_eq!(registry.registered(), 0);
    }
}
