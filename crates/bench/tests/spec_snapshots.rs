//! Snapshot tests pinning the point enumeration of every artifact spec.
//!
//! The declarative specs are the single source of truth for which
//! simulations each figure/table runs; these tests freeze that enumeration
//! (kernel lists, configuration sweeps, mode combinations) so an
//! accidental edit to a constructor shows up as a failing snapshot rather
//! than as silently different paper numbers.

use xloops_bench::experiments::{all_specs, fig9_spec, spec_by_name, table2_spec};
use xloops_bench::manifest::{
    Cell, ConfigSpec, EnergyPreset, ExperimentSpec, GppPreset, SectionBody, SpecPoint,
};
use xloops_kernels::{table2, table4};
use xloops_lpsu::LpsuConfig;
use xloops_sim::ExecMode;

/// The artifact names, in emission order, and each spec's point count as a
/// closed-form function of the kernel tables.
#[test]
fn every_spec_has_its_pinned_name_and_point_count() {
    let n2 = table2().len();
    let n4 = table4().len();
    // Per kernel: 3 GP baselines, and T (no LPSU), S, A on each GPP class,
    // with io:T shared with the X/G instruction-ratio column.
    let expected: &[(&str, usize)] = &[
        ("table2", 12 * n2),
        // (baseline + specialized) on ooo/2 and ooo/4.
        ("fig5", 4 * n2),
        // One specialized point per kernel (ooo/2+x).
        ("fig6", n2),
        // baseline + S + A on ooo/4.
        ("fig7", 3 * n2),
        // baseline + S + A on each of the three GPP classes.
        ("fig8", 9 * n2),
        // 5 kernels x (baseline + 5 LPSU variants).
        ("fig9", 30),
        // (baseline + specialized) on each GPP class.
        ("table4", 6 * n4),
        // Purely analytical: no simulation points at all.
        ("table5", 0),
        // 6 uc kernels x (baseline + specialized), VLSI energy table.
        ("fig10", 12),
        // 5 xlf kernels x 3 points + 4 CIB kernels x 4 points.
        ("ablation", 31),
    ];
    let specs = all_specs();
    let got: Vec<(String, usize)> =
        specs.iter().map(|s| (s.name.clone(), s.points.len())).collect();
    let want: Vec<(String, usize)> = expected.iter().map(|&(n, c)| (n.to_string(), c)).collect();
    assert_eq!(got, want);
    for spec in &specs {
        assert!(spec_by_name(&spec.name).is_some());
    }
}

fn baseline(kernel: &str, gpp: GppPreset, energy: EnergyPreset) -> SpecPoint {
    SpecPoint {
        kernel: kernel.to_string(),
        config: ConfigSpec { gpp, lpsu: None, energy },
        mode: ExecMode::Traditional,
        gp_lowered: true,
        sampling: None,
    }
}

fn run(kernel: &str, gpp: GppPreset, lpsu: LpsuConfig, mode: ExecMode) -> SpecPoint {
    SpecPoint {
        kernel: kernel.to_string(),
        config: ConfigSpec { gpp, lpsu: Some(lpsu), energy: EnergyPreset::Mcpat45 },
        mode,
        gp_lowered: false,
        sampling: None,
    }
}

/// Figure 9's LPSU design space on ooo/4, pinned point by point: for each
/// of the five selected kernels, the GP baseline followed by the x4, x4+t,
/// x8, x8+r, and x8+r+m variants.
#[test]
fn fig9_design_space_is_pinned() {
    let kernels = ["sgemm-uc", "viterbi-uc", "kmeans-or", "covar-or", "btree-ua"];
    let variants = [
        LpsuConfig::default4(),
        LpsuConfig::default4().with_multithreading(),
        LpsuConfig::default4().with_lanes(8),
        LpsuConfig::default4().with_lanes(8).with_double_resources(),
        LpsuConfig::default4().with_lanes(8).with_double_resources().with_big_lsq(),
    ];
    let mut expected = Vec::new();
    for k in kernels {
        expected.push(baseline(k, GppPreset::Ooo4, EnergyPreset::Mcpat45));
        for v in variants {
            expected.push(run(k, GppPreset::Ooo4, v, ExecMode::Specialized));
        }
    }
    assert_eq!(fig9_spec().points, expected);
}

/// Table II covers exactly the Table II kernel list, in table order, and
/// every kernel gets the full T/S/A sweep on all three GPP classes.
#[test]
fn table2_sweeps_every_kernel_across_all_gpps_and_modes() {
    let spec = table2_spec();
    let SectionBody::Table { rows, .. } = &spec.sections[0].body else {
        panic!("table2 renders as a table");
    };
    let row_names: Vec<&str> = rows
        .iter()
        .map(|r| match &r[0] {
            Cell::Text(t) => t.as_str(),
            other => panic!("first column is the kernel name, got {other:?}"),
        })
        .collect();
    let kernel_names: Vec<&str> = table2().iter().map(|k| k.name).collect();
    assert_eq!(row_names, kernel_names);

    for k in table2() {
        for gpp in [GppPreset::Io, GppPreset::Ooo2, GppPreset::Ooo4] {
            assert!(
                spec.points.contains(&baseline(k.name, gpp, EnergyPreset::Mcpat45)),
                "{} missing its GP baseline on {gpp:?}",
                k.name
            );
            for mode in [ExecMode::Specialized, ExecMode::Adaptive] {
                assert!(
                    spec.points.contains(&run(k.name, gpp, LpsuConfig::default4(), mode)),
                    "{} missing {mode:?} on {gpp:?}",
                    k.name
                );
            }
            // Traditional runs the XLOOPS binary with no LPSU attached.
            let trad = SpecPoint {
                kernel: k.name.to_string(),
                config: ConfigSpec { gpp, lpsu: None, energy: EnergyPreset::Mcpat45 },
                mode: ExecMode::Traditional,
                gp_lowered: false,
                sampling: None,
            };
            assert!(spec.points.contains(&trad), "{} missing T on {gpp:?}", k.name);
        }
    }
}

/// The Figure 6 cycle-breakdown columns read the pinned dotted stat paths
/// of the system tree (the same paths `--stats json` exposes), all
/// normalized by total lane-cycles.
#[test]
fn fig6_breakdown_paths_are_pinned() {
    let spec = spec_by_name("fig6").unwrap();
    let SectionBody::Table { rows, .. } = &spec.sections[0].body else {
        panic!("fig6 renders as a table");
    };
    let expected = [
        "lpsu.exec",
        "lpsu.stalls.raw",
        "lpsu.stalls.mem_port",
        "lpsu.stalls.llfu",
        "lpsu.stalls.cir",
        "lpsu.stalls.lsq",
        "lpsu.squash",
        "lpsu.idle",
    ];
    for row in rows {
        let paths: Vec<&str> = row
            .iter()
            .filter_map(|c| match c {
                Cell::Pct { path, total, .. } => {
                    assert_eq!(total, "lpsu.lane_cycles");
                    Some(path.as_str())
                }
                _ => None,
            })
            .collect();
        assert_eq!(paths, expected);
        assert!(
            matches!(&row[row.len() - 1], Cell::Counter { path, .. } if path == "lpsu.squashed_iters")
        );
    }
}

/// Every spec survives the JSON round trip unchanged — including its
/// fingerprint, which is what shard pairing relies on.
#[test]
fn all_specs_round_trip_through_json_with_stable_fingerprints() {
    for spec in all_specs() {
        let back = ExperimentSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(back, spec, "{} changed across encode/parse", spec.name);
        assert_eq!(back.fingerprint(), spec.fingerprint());
        // The pretty form parses to the same spec too (it is the
        // `manifest -o` / sweep file format).
        let pretty = ExperimentSpec::from_json(&spec.to_json_pretty()).expect("pretty parses");
        assert_eq!(pretty, spec);
    }
}
