//! Property tests for the unified wire codec: [`Request::parse`] is the
//! single place any transport (Unix socket, TCP, worker pipe) touches
//! peer-controlled bytes, and it must never panic — a malformed line from
//! one client must not take down the sweeps every other client is waiting
//! on. Byte soup, ASCII soup, and JSON-shaped soup all go straight into
//! both the codec and the daemon's [`handle_line`] dispatch; every
//! response must be a single-line document with an `ok` flag, and every
//! refusal must carry the canonical `error_doc` shape (`message` +
//! `exit_code` 2, the CLI's usage-error code). The deterministic cases
//! below pin the happy-path round trips the thin clients rely on, the
//! encoder→parser round trip of every typed request, and the
//! version-before-token ordering of the handshake check.

use std::sync::Arc;

use proptest::prelude::*;
use xloops_bench::proto::{check_handshake, hello_ok, Request, PROTO_VERSION};
use xloops_bench::serve::{handle_line, ServiceState};
use xloops_sim::RunOptions;
use xloops_stats::JsonValue;

fn state() -> Arc<ServiceState> {
    // No store and default options keep refused requests from touching
    // the filesystem; no token means `hello` needs only the version.
    Arc::new(ServiceState::new(None, RunOptions::default(), None))
}

fn ok_flag(doc: &JsonValue) -> Option<bool> {
    doc.get("ok").and_then(JsonValue::as_bool)
}

fn exit_code(doc: &JsonValue) -> Option<f64> {
    doc.get("error").and_then(|e| e.get("exit_code")).and_then(JsonValue::as_f64)
}

/// Every well-formed refusal or success must satisfy the wire contract:
/// an `ok` flag, one line, and (when refused) a complete error document.
fn assert_wire_contract(resp: &xloops_bench::serve::Response) {
    let ok = ok_flag(&resp.body).expect("response carries an `ok` flag");
    let rendered = resp.body.render();
    assert!(!rendered.contains('\n'), "responses are single lines: {rendered}");
    if !ok {
        assert!(!resp.shutdown, "a refused request must not stop the daemon");
        let msg = resp.body.get("error").and_then(|e| e.get("message")).and_then(JsonValue::as_str);
        assert!(msg.is_some(), "refusals carry a message: {rendered}");
        assert_eq!(exit_code(&resp.body), Some(2.0), "refusals use the usage-error code");
    }
}

/// The codec-level contract: parsing never panics, and a rejected line
/// yields a refusal whose rendered document satisfies the same shape the
/// daemon would put on the wire.
fn assert_codec_contract(line: &[u8]) {
    if let Err(refusal) = Request::parse(line) {
        let doc = refusal.to_json_value();
        assert_eq!(ok_flag(&doc), Some(false));
        assert_eq!(exit_code(&doc), Some(2.0));
        let msg = doc.get("error").and_then(|e| e.get("message")).and_then(JsonValue::as_str);
        assert!(msg.is_some_and(|m| !m.is_empty()), "refusals carry a message");
    }
}

proptest! {
    /// Arbitrary bytes (including interior NULs and invalid UTF-8) never
    /// panic the codec or the daemon and always produce a
    /// contract-conforming line.
    #[test]
    fn byte_soup_never_panics(line in prop::collection::vec(any::<u8>(), 0..256)) {
        assert_codec_contract(&line);
        let st = state();
        let resp = handle_line(&st, &line);
        assert_wire_contract(&resp);
    }

    /// Printable-ASCII soup: mostly JSON-adjacent garbage.
    #[test]
    fn text_soup_never_panics(bytes in prop::collection::vec(0x20u8..0x7f, 0..200)) {
        assert_codec_contract(&bytes);
        let st = state();
        let resp = handle_line(&st, &bytes);
        assert_wire_contract(&resp);
    }

    /// JSON-shaped soup: structurally valid documents with arbitrary
    /// command names and junk fields exercise every dispatch arm of the
    /// union codec — daemon commands, worker commands, and handshakes.
    #[test]
    fn json_soup_never_panics(
        cmd in prop::sample::select(vec![
            "", "ping", "submit", "status", "shutdown", "frobnicate", "PING",
            "submit ", "hello", "register", "manifest", "job", "exit",
        ]),
        job in prop::sample::select(vec!["", "0", "0000000000000000", "not-a-fingerprint"]),
        extra in any::<u64>(),
    ) {
        let doc = JsonValue::object(vec![
            ("cmd", JsonValue::Str(cmd.to_string())),
            ("job", JsonValue::Str(job.to_string())),
            ("fingerprint", JsonValue::Str(job.to_string())),
            ("manifest", JsonValue::UInt(extra)),
            ("v", JsonValue::UInt(extra)),
            ("index", JsonValue::UInt(extra)),
        ]);
        let line = doc.render();
        assert_codec_contract(line.as_bytes());
        let st = state();
        let resp = handle_line(&st, line.as_bytes());
        assert_wire_contract(&resp);
    }
}

#[test]
fn every_typed_request_round_trips_through_the_codec() {
    let mut spec = xloops_bench::experiments::all_specs()
        .into_iter()
        .find(|s| s.name == "table2")
        .expect("table2 spec exists");
    spec.points.truncate(2);
    spec.sections.clear();
    let fp = spec.fingerprint();
    let requests = vec![
        Request::Hello { version: PROTO_VERSION, token: Some("s3cret".into()) },
        Request::Register { version: PROTO_VERSION, token: None },
        Request::Ping,
        Request::Submit { spec: Box::new(spec.clone()), wait: true },
        Request::Status { job: None },
        Request::Status { job: Some(fp.clone()) },
        Request::Shutdown,
        Request::Manifest { spec: Box::new(spec) },
        Request::Job { fingerprint: fp, index: 1, options: Box::new(RunOptions::default()) },
        Request::Exit,
    ];
    for req in requests {
        let line = req.to_json_value().render();
        assert!(!line.contains('\n'), "requests are single lines: {line}");
        let back = Request::parse(line.as_bytes())
            .unwrap_or_else(|r| panic!("{line} must re-parse: {}", r.message));
        assert_eq!(back.name(), req.name(), "{line}");
        assert_eq!(back.to_json_value().render(), line, "re-encode is byte-identical");
    }
}

#[test]
fn handshake_checks_version_before_token() {
    // Wrong version with a wrong token: the version mismatch must win,
    // so an old worker gets told to upgrade rather than chasing tokens.
    let e = check_handshake(99, Some("bad"), Some("good")).expect_err("mismatch refused");
    assert!(e.message.contains("protocol version mismatch"), "{}", e.message);
    assert!(e.message.contains("v99"), "{}", e.message);
    // Right version, wrong/missing token.
    for token in [Some("bad"), None] {
        let e = check_handshake(PROTO_VERSION, token, Some("good")).expect_err("token refused");
        assert!(e.message.contains("token"), "{}", e.message);
    }
    // No token required: any token (or none) passes at the right version.
    check_handshake(PROTO_VERSION, Some("ignored"), None).expect("no token wanted");
    check_handshake(PROTO_VERSION, None, None).expect("no token wanted");
    // The matching pair passes, and the ok doc advertises the version.
    check_handshake(PROTO_VERSION, Some("good"), Some("good")).expect("match passes");
    let ok = hello_ok();
    assert_eq!(ok_flag(&ok), Some(true));
    assert_eq!(ok.get("v").and_then(JsonValue::as_u64), Some(PROTO_VERSION));
}

#[test]
fn hello_round_trips_through_the_daemon_dispatch() {
    let st = state();
    let resp = handle_line(&st, format!(r#"{{"cmd":"hello","v":{PROTO_VERSION}}}"#).as_bytes());
    assert_eq!(ok_flag(&resp.body), Some(true));
    assert_eq!(resp.body.get("hello").and_then(JsonValue::as_bool), Some(true));
    // A version-mismatched hello is a typed refusal, not a disconnect.
    let resp = handle_line(&st, br#"{"cmd":"hello","v":99}"#);
    assert_eq!(ok_flag(&resp.body), Some(false));
    assert_wire_contract(&resp);
}

#[test]
fn ping_round_trips() {
    let st = state();
    let resp = handle_line(&st, br#"{"cmd":"ping"}"#);
    assert_eq!(ok_flag(&resp.body), Some(true));
    assert_eq!(resp.body.get("pong").and_then(JsonValue::as_bool), Some(true));
    assert!(!resp.shutdown);
}

#[test]
fn shutdown_flags_the_daemon() {
    let st = state();
    let resp = handle_line(&st, br#"{"cmd":"shutdown"}"#);
    assert_eq!(ok_flag(&resp.body), Some(true));
    assert!(resp.shutdown);
}

#[test]
fn bare_status_lists_jobs_and_identifies_the_daemon() {
    // With no job id, `status` is the listing query: an empty daemon
    // answers ok with an empty `jobs` array (not a refusal) plus its
    // identity fields, and an explicit empty id means the same thing.
    let st = state();
    for line in [&b"{\"cmd\":\"status\"}"[..], b"{\"cmd\":\"status\",\"job\":\"\"}"] {
        let resp = handle_line(&st, line);
        assert_eq!(ok_flag(&resp.body), Some(true), "{:?}", String::from_utf8_lossy(line));
        assert_wire_contract(&resp);
        let jobs = resp.body.get("jobs").and_then(JsonValue::as_array).expect("jobs array");
        assert!(jobs.is_empty(), "no sweeps submitted yet");
        let version = resp.body.get("version").and_then(JsonValue::as_str).expect("version");
        assert_eq!(version, env!("CARGO_PKG_VERSION"));
        assert!(resp.body.get("uptime_ms").and_then(JsonValue::as_u64).is_some());
        assert_eq!(resp.body.get("workers").and_then(JsonValue::as_u64), Some(0));
    }
}

#[test]
fn malformed_requests_are_refused_not_fatal() {
    let st = state();
    for line in [
        &b""[..],
        b"   \n",
        b"\xff\xfe{\"cmd\":\"ping\"}",
        b"not json at all",
        b"{\"cmd\":42}",
        b"{\"no\":\"cmd\"}",
        b"{\"cmd\":\"frobnicate\"}",
        b"{\"cmd\":\"status\",\"job\":42}",
        b"{\"cmd\":\"status\",\"job\":\"0000000000000000\"}",
        b"{\"cmd\":\"submit\"}",
        b"{\"cmd\":\"submit\",\"manifest\":{}}",
        b"{\"cmd\":\"submit\",\"manifest\":[1,2,3]}",
        // Worker-side commands are typed refusals on the daemon surface.
        b"{\"cmd\":\"manifest\"}",
        b"{\"cmd\":\"job\",\"fingerprint\":\"x\",\"index\":0}",
        b"{\"cmd\":\"exit\"}",
    ] {
        let resp = handle_line(&st, line);
        assert_eq!(ok_flag(&resp.body), Some(false), "{:?}", String::from_utf8_lossy(line));
        assert_wire_contract(&resp);
    }
}
