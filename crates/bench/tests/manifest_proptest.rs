//! Property tests for the manifest layer's JSON round trips: for
//! arbitrary experiment specs and shard documents,
//! `encode -> parse -> encode` must be the identity on the encoded bytes.
//! The binary shard encoding must agree: `to_binary -> from_binary ->
//! to_binary` is the identity, [`ShardDoc::from_bytes`] reads either
//! format to the same document, and the binary form stays well under the
//! pretty-JSON size. Together with the `xloops-stats` round-trip suite
//! this covers every document shape the sharded sweep pipeline writes or
//! reads.

use proptest::prelude::*;
use xloops_bench::manifest::{
    BarRow, Cell, ConfigSpec, EnergyPreset, ExperimentSpec, GppPreset, PointResult, Section,
    SectionBody, ShardDoc, SpecPoint,
};
use xloops_kernels::table2;
use xloops_lpsu::LpsuConfig;
use xloops_sim::{ExecMode, RunOptions, SampleSpec, SupervisorConfig};
use xloops_stats::StatSet;

/// Real kernel names only: [`ExperimentSpec::validate`] rejects anything
/// `xloops_kernels::by_name` cannot resolve.
fn kernel_strategy() -> BoxedStrategy<String> {
    let names: Vec<String> = table2().iter().map(|k| k.name.to_string()).collect();
    prop::sample::select(names).boxed()
}

/// Strings exercising the escaping rules (captions, labels, paths).
fn text_strategy() -> BoxedStrategy<String> {
    prop::sample::select(vec![
        String::new(),
        "name".to_string(),
        "lpsu.stalls.raw".to_string(),
        "--- vs ooo/2 ---\n".to_string(),
        "quo\"te and back\\slash".to_string(),
        "new\nline\tand\ttabs".to_string(),
        "unicode-λ-😀".to_string(),
    ])
    .boxed()
}

fn lpsu_strategy() -> BoxedStrategy<Option<LpsuConfig>> {
    prop::sample::select(vec![
        None,
        Some(LpsuConfig::default4()),
        Some(LpsuConfig::default4().with_multithreading()),
        Some(LpsuConfig::default4().with_lanes(8)),
        Some(LpsuConfig::default4().with_lanes(8).with_double_resources()),
        Some(LpsuConfig::default4().with_big_lsq()),
        Some(LpsuConfig::default4().with_cross_lane_forwarding()),
        Some(LpsuConfig::default4().with_cib_latency(4)),
    ])
    .boxed()
}

/// Arbitrary valid sampling specs (ff and measure must be positive; warm
/// is free, including zero).
fn sample_strategy() -> BoxedStrategy<Option<SampleSpec>> {
    prop_oneof![
        Just(None),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(ff, warm, measure)| Some(
            SampleSpec::new(ff.max(1), warm % 100_000, measure.max(1))
                .expect("positive ff/measure")
        )),
    ]
    .boxed()
}

fn point_strategy() -> BoxedStrategy<SpecPoint> {
    (
        kernel_strategy(),
        prop::sample::select(vec![GppPreset::Io, GppPreset::Ooo2, GppPreset::Ooo4]),
        lpsu_strategy(),
        prop::sample::select(vec![EnergyPreset::Mcpat45, EnergyPreset::Vlsi40]),
        prop::sample::select(vec![
            ExecMode::Traditional,
            ExecMode::Specialized,
            ExecMode::Adaptive,
        ]),
        any::<bool>(),
        sample_strategy(),
    )
        .prop_map(|(kernel, gpp, lpsu, energy, mode, gp_lowered, sampling)| SpecPoint {
            kernel,
            config: ConfigSpec { gpp, lpsu, energy },
            mode,
            gp_lowered,
            sampling,
        })
        .boxed()
}

/// A cell formula with unconstrained point references; [`clamp_section`]
/// folds them into range once the point count is known (the vendored
/// proptest stub has no `prop_flat_map` to thread it through directly).
fn cell_strategy() -> BoxedStrategy<Cell> {
    let idx = |v: u64| v as usize;
    prop_oneof![
        text_strategy().prop_map(Cell::Text),
        (any::<u64>(), any::<u64>())
            .prop_map(move |(b, r)| Cell::Speedup { base: idx(b), run: idx(r) }),
        (any::<u64>(), any::<u64>())
            .prop_map(move |(b, r)| Cell::EnergyEff { base: idx(b), run: idx(r) }),
        (any::<u64>(), any::<u64>(), text_strategy()).prop_map(move |(n, d, path)| Cell::Ratio {
            num: idx(n),
            den: idx(d),
            path
        }),
        any::<u64>().prop_map(move |p| Cell::Insns { point: idx(p) }),
        (any::<u64>(), text_strategy())
            .prop_map(move |(p, path)| Cell::Counter { point: idx(p), path }),
        (any::<u64>(), text_strategy(), text_strategy())
            .prop_map(move |(p, path, total)| Cell::Pct { point: idx(p), path, total }),
        (any::<u64>(), text_strategy(), text_strategy(), text_strategy()).prop_map(
            move |(p, path, nonzero, zero)| Cell::Choice { point: idx(p), path, nonzero, zero }
        ),
    ]
    .boxed()
}

fn section_strategy() -> BoxedStrategy<Section> {
    let table = (
        prop::collection::vec(text_strategy(), 1..4),
        prop::collection::vec(prop::collection::vec(cell_strategy(), 1..4), 0..4),
    )
        .prop_map(|(header, mut rows)| {
            // Validation requires every row to be exactly as wide as the
            // header; truncate or pad (cloning the last cell) to match.
            let w = header.len();
            for row in &mut rows {
                while row.len() > w {
                    row.pop();
                }
                while row.len() < w {
                    row.push(row.last().expect("rows are non-empty").clone());
                }
            }
            SectionBody::Table { header, rows }
        });
    let bars = prop::collection::vec(
        (text_strategy(), any::<u64>(), any::<u64>()).prop_map(|(label, b, r)| BarRow {
            label,
            base: b as usize,
            run: r as usize,
        }),
        0..4,
    )
    .prop_map(|rows| SectionBody::Bars { rows });
    (text_strategy(), prop_oneof![table, bars], text_strategy())
        .prop_map(|(prefix, body, suffix)| Section { prefix, body, suffix })
        .boxed()
}

/// Folds every point reference of `s` into `0..n` so the spec validates.
fn clamp_section(mut s: Section, n: usize) -> Section {
    let clamp = |i: &mut usize| *i %= n;
    match &mut s.body {
        SectionBody::Table { rows, .. } => {
            for cell in rows.iter_mut().flatten() {
                match cell {
                    Cell::Text(_) => {}
                    Cell::Speedup { base, run } | Cell::EnergyEff { base, run } => {
                        clamp(base);
                        clamp(run);
                    }
                    Cell::Ratio { num, den, .. } => {
                        clamp(num);
                        clamp(den);
                    }
                    Cell::Insns { point }
                    | Cell::Counter { point, .. }
                    | Cell::Pct { point, .. }
                    | Cell::Choice { point, .. } => clamp(point),
                }
            }
        }
        SectionBody::Bars { rows } => {
            for r in rows {
                clamp(&mut r.base);
                clamp(&mut r.run);
            }
        }
    }
    s
}

fn spec_strategy() -> BoxedStrategy<ExperimentSpec> {
    (
        text_strategy(),
        text_strategy(),
        prop::collection::vec(point_strategy(), 1..6),
        prop::collection::vec(section_strategy(), 0..3),
    )
        .prop_map(|(name, caption, points, sections)| {
            let n = points.len();
            ExperimentSpec {
                name,
                caption,
                points,
                sections: sections.into_iter().map(|s| clamp_section(s, n)).collect(),
            }
        })
        .boxed()
}

fn options_strategy() -> BoxedStrategy<RunOptions> {
    let supervisor = prop_oneof![
        Just(None),
        (
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
            prop_oneof![Just(None), any::<u64>().prop_map(Some)]
        )
            .prop_map(|(enabled, interval, retries, budget)| Some(SupervisorConfig {
                enabled,
                checkpoint_interval: interval.max(1),
                max_retries: (retries % 16) as u32,
                cycle_budget: budget,
            })),
    ];
    (
        supervisor,
        any::<bool>(),
        prop_oneof![Just(None), any::<u64>().prop_map(|t| Some((t as usize) % 64))],
        any::<bool>(),
        prop_oneof![Just(None), text_strategy().prop_map(Some)],
        sample_strategy(),
    )
        .prop_map(|(supervisor, serial, threads, profile, bench_date, sample)| RunOptions {
            supervisor,
            serial,
            threads,
            profile,
            bench_date,
            sample,
        })
        .boxed()
}

/// Small stat trees standing in for per-point results (arbitrary deep
/// trees are covered by the `xloops-stats` suite).
fn stats_strategy() -> BoxedStrategy<StatSet> {
    (
        text_strategy(),
        prop::collection::vec((text_strategy(), any::<u64>()), 0..3),
        prop::collection::vec((text_strategy(), any::<u64>()), 0..2),
    )
        .prop_map(|(name, counters, metrics)| {
            let mut s = StatSet::new(&name);
            for (n, v) in counters {
                s.set(&n, v);
            }
            for (n, v) in metrics {
                s.set_metric(&n, v as f64 / 8.0);
            }
            s
        })
        .boxed()
}

fn shard_strategy() -> BoxedStrategy<ShardDoc> {
    (
        spec_strategy(),
        options_strategy(),
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(
            (
                any::<u64>(),
                stats_strategy(),
                prop_oneof![Just(None), text_strategy().prop_map(Some)],
            ),
            0..4,
        ),
    )
        .prop_map(|(spec, options, raw_of, raw_index, raw_results)| {
            let of = (raw_of as usize) % 4 + 1;
            let index = (raw_index as usize) % of;
            let results = raw_results
                .into_iter()
                .map(|(i, stats, error)| {
                    ((i as usize) % spec.points.len(), PointResult { stats, error })
                })
                .collect();
            ShardDoc { fingerprint: spec.fingerprint(), index, of, options, spec, results }
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn experiment_spec_encode_parse_encode_is_identity(spec in spec_strategy()) {
        let once = spec.to_json();
        let parsed = ExperimentSpec::from_json(&once)
            .map_err(|e| TestCaseError::fail(format!("{e} in {once}")))?;
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.to_json(), once);
        // The pretty form (the on-disk manifest format) parses identically.
        let pretty = ExperimentSpec::from_json(&spec.to_json_pretty())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(pretty, spec);
    }

    #[test]
    fn shard_doc_encode_parse_encode_is_identity(doc in shard_strategy()) {
        let once = doc.to_json();
        let parsed = ShardDoc::from_json(&once)
            .map_err(|e| TestCaseError::fail(format!("{e} in {once}")))?;
        prop_assert_eq!(&parsed, &doc);
        prop_assert_eq!(parsed.to_json(), once);
    }

    #[test]
    fn spec_parser_never_panics_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let text: String = bytes.into_iter().map(|b| b as char).collect();
        let _ = ExperimentSpec::from_json(&text); // Ok or Err, never an unwind.
        let _ = ShardDoc::from_json(&text);
    }

    #[test]
    fn shard_doc_binary_round_trips_and_matches_json(doc in shard_strategy()) {
        let bytes = doc.to_binary();
        let back = ShardDoc::from_binary(&bytes)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&back, &doc);
        prop_assert_eq!(back.to_binary(), bytes);
    }

    #[test]
    fn from_bytes_reads_both_formats_to_the_same_doc(doc in shard_strategy()) {
        let from_json = ShardDoc::from_bytes(doc.to_json().as_bytes())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let from_binary = ShardDoc::from_bytes(&doc.to_binary())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&from_json, &doc);
        prop_assert_eq!(&from_binary, &doc);
    }

    #[test]
    fn from_bytes_never_panics_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let _ = ShardDoc::from_bytes(&bytes); // Ok or Err, never an unwind.
        let mut magical = xloops_stats::binary::MAGIC.to_vec();
        magical.push(xloops_stats::binary::VERSION);
        magical.extend_from_slice(&bytes);
        let _ = ShardDoc::from_bytes(&magical);
    }
}
