//! Property tests for the daemon's parse surface: [`handle_line`] is the
//! only place `xloops serve` touches client-controlled bytes, and it must
//! never panic — a malformed line from one client must not take down the
//! sweeps every other client is waiting on. Byte soup, ASCII soup, and
//! JSON-shaped soup all go straight in; every response must be a
//! single-line document with an `ok` flag, and every refusal must carry
//! the canonical `error_doc` shape (`message` + `exit_code` 2, the CLI's
//! usage-error code). The deterministic cases below pin the happy-path
//! round trips the thin clients rely on.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use xloops_bench::serve::{handle_line, ServiceState};
use xloops_sim::RunOptions;
use xloops_stats::JsonValue;

fn state() -> Arc<ServiceState> {
    // The socket path is never dereferenced by `handle_line`; no store and
    // default options keep refused requests from touching the filesystem.
    Arc::new(ServiceState::new(
        PathBuf::from("/nonexistent/xloops-protocol-test.sock"),
        None,
        RunOptions::default(),
    ))
}

fn ok_flag(doc: &JsonValue) -> Option<bool> {
    doc.get("ok").and_then(JsonValue::as_bool)
}

fn exit_code(doc: &JsonValue) -> Option<f64> {
    doc.get("error").and_then(|e| e.get("exit_code")).and_then(JsonValue::as_f64)
}

/// Every well-formed refusal or success must satisfy the wire contract:
/// an `ok` flag, one line, and (when refused) a complete error document.
fn assert_wire_contract(resp: &xloops_bench::serve::Response) {
    let ok = ok_flag(&resp.body).expect("response carries an `ok` flag");
    let rendered = resp.body.render();
    assert!(!rendered.contains('\n'), "responses are single lines: {rendered}");
    if !ok {
        assert!(!resp.shutdown, "a refused request must not stop the daemon");
        let msg = resp.body.get("error").and_then(|e| e.get("message")).and_then(JsonValue::as_str);
        assert!(msg.is_some(), "refusals carry a message: {rendered}");
        assert_eq!(exit_code(&resp.body), Some(2.0), "refusals use the usage-error code");
    }
}

proptest! {
    /// Arbitrary bytes (including interior NULs and invalid UTF-8) never
    /// panic the daemon and always produce a contract-conforming line.
    #[test]
    fn byte_soup_never_panics(line in prop::collection::vec(any::<u8>(), 0..256)) {
        let st = state();
        let resp = handle_line(&st, &line);
        assert_wire_contract(&resp);
    }

    /// Printable-ASCII soup: mostly JSON-adjacent garbage.
    #[test]
    fn text_soup_never_panics(bytes in prop::collection::vec(0x20u8..0x7f, 0..200)) {
        let st = state();
        let resp = handle_line(&st, &bytes);
        assert_wire_contract(&resp);
    }

    /// JSON-shaped soup: structurally valid documents with arbitrary
    /// command names and junk fields exercise the dispatch arms.
    #[test]
    fn json_soup_never_panics(
        cmd in prop::sample::select(vec![
            "", "ping", "submit", "status", "shutdown", "frobnicate", "PING", "submit ",
        ]),
        job in prop::sample::select(vec!["", "0", "0000000000000000", "not-a-fingerprint"]),
        extra in any::<u64>(),
    ) {
        let st = state();
        let doc = JsonValue::object(vec![
            ("cmd", JsonValue::Str(cmd.to_string())),
            ("job", JsonValue::Str(job.to_string())),
            ("manifest", JsonValue::UInt(extra)),
        ]);
        let resp = handle_line(&st, doc.render().as_bytes());
        assert_wire_contract(&resp);
    }
}

#[test]
fn ping_round_trips() {
    let st = state();
    let resp = handle_line(&st, br#"{"cmd":"ping"}"#);
    assert_eq!(ok_flag(&resp.body), Some(true));
    assert_eq!(resp.body.get("pong").and_then(JsonValue::as_bool), Some(true));
    assert!(!resp.shutdown);
}

#[test]
fn shutdown_flags_the_daemon() {
    let st = state();
    let resp = handle_line(&st, br#"{"cmd":"shutdown"}"#);
    assert_eq!(ok_flag(&resp.body), Some(true));
    assert!(resp.shutdown);
}

#[test]
fn bare_status_lists_jobs_instead_of_erroring() {
    // With no job id, `status` is the listing query: an empty daemon
    // answers ok with an empty `jobs` array (not a refusal), and an
    // explicit empty id means the same thing.
    let st = state();
    for line in [&b"{\"cmd\":\"status\"}"[..], b"{\"cmd\":\"status\",\"job\":\"\"}"] {
        let resp = handle_line(&st, line);
        assert_eq!(ok_flag(&resp.body), Some(true), "{:?}", String::from_utf8_lossy(line));
        assert_wire_contract(&resp);
        let jobs = resp.body.get("jobs").and_then(JsonValue::as_array).expect("jobs array");
        assert!(jobs.is_empty(), "no sweeps submitted yet");
    }
}

#[test]
fn malformed_requests_are_refused_not_fatal() {
    let st = state();
    for line in [
        &b""[..],
        b"   \n",
        b"\xff\xfe{\"cmd\":\"ping\"}",
        b"not json at all",
        b"{\"cmd\":42}",
        b"{\"no\":\"cmd\"}",
        b"{\"cmd\":\"frobnicate\"}",
        b"{\"cmd\":\"status\",\"job\":42}",
        b"{\"cmd\":\"status\",\"job\":\"0000000000000000\"}",
        b"{\"cmd\":\"submit\"}",
        b"{\"cmd\":\"submit\",\"manifest\":{}}",
        b"{\"cmd\":\"submit\",\"manifest\":[1,2,3]}",
    ] {
        let resp = handle_line(&st, line);
        assert_eq!(ok_flag(&resp.body), Some(false), "{:?}", String::from_utf8_lossy(line));
        assert_wire_contract(&resp);
    }
}
