//! End-to-end daemon test: a real Unix socket, concurrent `--wait`
//! clients, and a warm restart against the same store. This is the
//! in-process twin of CI's `serve-smoke` job — same protocol, same
//! scheduler, but small (a 3-point spec) so it runs in the normal test
//! suite. Pins the three service-layer properties the CLI relies on:
//! duplicate submits attach to one sweep (both waiters get byte-identical
//! artifacts matching the storeless render), late `status` queries answer
//! from the registry, and a restarted daemon serves every point of a
//! resubmitted sweep from the store.

use std::path::{Path, PathBuf};

use xloops_bench::manifest::{render_spec, run_shard, ExperimentSpec};
use xloops_bench::proto::request;
use xloops_bench::serve::{Daemon, ServeConfig};
use xloops_bench::transport::Endpoint;
use xloops_sim::RunOptions;
use xloops_stats::JsonValue;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("xloops-serve-e2e-{tag}-{}", std::process::id()));
    p
}

fn small_spec() -> ExperimentSpec {
    let mut spec = xloops_bench::experiments::all_specs()
        .into_iter()
        .find(|s| s.name == "table2")
        .expect("table2 spec exists");
    spec.points.truncate(3);
    spec.sections.clear();
    spec
}

fn submit_wait(sock: &Path, spec: &ExperimentSpec) -> JsonValue {
    let req = JsonValue::object(vec![
        ("cmd", JsonValue::Str("submit".to_string())),
        ("manifest", spec.to_json_value()),
        ("wait", JsonValue::Bool(true)),
    ]);
    request(&Endpoint::unix(sock), &req).expect("submit round trip")
}

fn shutdown(sock: &Path) {
    let req = JsonValue::object(vec![("cmd", JsonValue::Str("shutdown".to_string()))]);
    let resp = request(&Endpoint::unix(sock), &req).expect("shutdown round trip");
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
}

#[test]
fn concurrent_clients_then_warm_restart() {
    let sock = temp_path("sock");
    let store_dir = temp_path("store");
    let _ = std::fs::remove_file(&sock);
    let _ = std::fs::remove_dir_all(&store_dir);
    let spec = small_spec();
    let points = spec.points.len() as u64;

    // The storeless reference render: what every client must receive.
    let shard = run_shard(&spec, 0, 1, RunOptions::default());
    let results: Vec<_> = shard.results.into_iter().map(|(_, pr)| pr).collect();
    let reference = render_spec(&spec, &results);

    let cfg = ServeConfig::unix(sock.clone(), Some(store_dir.clone()), RunOptions::default());
    let daemon = Daemon::bind(cfg).expect("bind");
    let server = std::thread::spawn(move || daemon.run().expect("daemon run"));

    // Two concurrent --wait clients submitting the same manifest: the
    // second attaches to the first's sweep, both block until done.
    let responses: Vec<JsonValue> = {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let sock = sock.clone();
                let spec = spec.clone();
                std::thread::spawn(move || submit_wait(&sock, &spec))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    };
    let mut job_id = String::new();
    for resp in &responses {
        assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(resp.get("state").and_then(JsonValue::as_str), Some("done"));
        assert_eq!(resp.get("failed").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(resp.get("points").and_then(JsonValue::as_u64), Some(points));
        assert_eq!(
            resp.get("artifact").and_then(JsonValue::as_str),
            Some(reference.as_str()),
            "daemon artifact must match the storeless render byte for byte"
        );
        job_id = resp.get("job").and_then(JsonValue::as_str).expect("job id").to_string();
    }
    assert_eq!(job_id, spec.fingerprint(), "the job id is the manifest fingerprint");

    // A late status query answers from the registry.
    let status = request(
        &Endpoint::unix(&sock),
        &JsonValue::object(vec![
            ("cmd", JsonValue::Str("status".to_string())),
            ("job", JsonValue::Str(job_id)),
        ]),
    )
    .expect("status round trip");
    assert_eq!(status.get("state").and_then(JsonValue::as_str), Some("done"));
    // Live progress counters ride every status doc; a finished sweep
    // reports every admitted point done and nothing in flight.
    let progress = status.get("progress").expect("progress section");
    let n = |field: &str| progress.get(field).and_then(JsonValue::as_u64);
    assert_eq!(n("total"), Some(points));
    assert_eq!(n("done"), Some(points));
    assert_eq!(n("queued"), Some(0));
    assert_eq!(n("running"), Some(0));
    assert_eq!(n("failed"), Some(0));
    assert_eq!(status.get("quarantined").and_then(JsonValue::as_u64), Some(0));

    shutdown(&sock);
    let swept = server.join().expect("server thread");
    assert_eq!(swept, 1, "two submits of one manifest are one sweep");
    assert!(!sock.exists(), "clean shutdown removes the socket file");

    // Restart on the same socket and store: the resubmitted sweep finds
    // every point already durable — crash-safe resume is just a warm read.
    let cfg = ServeConfig::unix(sock.clone(), Some(store_dir.clone()), RunOptions::default());
    let daemon = Daemon::bind(cfg).expect("rebind");
    let server = std::thread::spawn(move || daemon.run().expect("daemon rerun"));
    let resp = submit_wait(&sock, &spec);
    assert_eq!(resp.get("state").and_then(JsonValue::as_str), Some("done"));
    assert_eq!(
        resp.get("artifact").and_then(JsonValue::as_str),
        Some(reference.as_str()),
        "warm artifact must be byte-identical to the cold one"
    );
    let store = resp.get("store").expect("store section");
    assert_eq!(store.get("hits").and_then(JsonValue::as_u64), Some(points));
    assert_eq!(store.get("misses").and_then(JsonValue::as_u64), Some(0));

    shutdown(&sock);
    server.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&store_dir);
}
