//! Throwaway profiling helper (not part of the PR surface): breaks a
//! specialized run down into scan + execute vs the rest.

use std::time::Instant;

use xloops_kernels::by_name;
use xloops_lpsu::{scan, Lpsu, Stepper};
use xloops_mem::{Cache, CacheConfig};
use xloops_sim::{ExecMode, System, SystemConfig};

fn main() {
    let kernels = std::env::var("XLOOPS_PROFILE_KERNELS")
        .unwrap_or_else(|_| "rgb2cmyk-uc,dither-or,ksack-sm-om".into());
    for name in kernels.split(',') {
        let kernel = by_name(name).unwrap();
        // Full system run timing.
        let t = Instant::now();
        let reps: u32 =
            std::env::var("XLOOPS_PROFILE_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(50);
        let mut cycles = 0;
        let mut stats = None;
        for _ in 0..reps {
            let mut sys = System::new(SystemConfig::io_x());
            kernel.init_memory(sys.mem_mut());
            let s = sys.run(&kernel.program, ExecMode::Specialized).unwrap();
            cycles = s.cycles;
            stats = Some(s);
        }
        let full = t.elapsed().as_secs_f64() / reps as f64;
        let st = stats.unwrap();
        println!(
            "{name}: full {:.0}us  cycles={} lpsu_cycles={} scans={} scan_instrs={} \
             lane_cycles={} exec={} raw={} mem_port={} llfu={} cir={} lsq={} squash={} idle={}",
            full * 1e6,
            cycles,
            st.lpsu_cycles,
            st.scans,
            st.scan_instrs,
            st.lpsu.lane_cycles(),
            st.lpsu.exec,
            st.lpsu.stall_raw,
            st.lpsu.stall_mem_port,
            st.lpsu.stall_llfu,
            st.lpsu.stall_cir,
            st.lpsu.stall_lsq,
            st.lpsu.squash,
            st.lpsu.idle,
        );

        // Isolated: functional prefix to the first xloop, then scan+execute
        // only, naive vs event.
        let program = &kernel.program;
        let xloop_pc = program.instrs().iter().position(|i| i.is_xloop()).map(|i| i as u32 * 4);
        if let Some(_pc) = xloop_pc {
            let cfg = xloops_lpsu::LpsuConfig::default4();
            // Re-run functionally to the first taken xloop using the interp.
            let mut mem = xloops_mem::Memory::new();
            kernel.init_memory(&mut mem);
            let mut cpu = xloops_func::Interp::new();
            let mut live_ins = [0u32; 32];
            let mut found = None;
            for _ in 0..10_000_000u64 {
                let pc = cpu.pc();
                let instr = program.instrs()[(pc / 4) as usize];
                if instr.is_xloop() {
                    for r in xloops_isa::Reg::all() {
                        live_ins[r.index()] = cpu.reg(r);
                    }
                    if scan(program, pc, live_ins, &cfg).is_ok() {
                        found = Some(pc);
                        break;
                    }
                }
                if cpu.step(program, &mut mem).is_err() {
                    break;
                }
            }
            let Some(pc) = found else {
                println!("  (no scannable xloop reached)");
                continue;
            };
            let s = scan(program, pc, live_ins, &cfg).unwrap();
            for (label, stepper) in [("naive", Stepper::Naive), ("event", Stepper::EventDriven)] {
                let t = Instant::now();
                let mut r = None;
                for _ in 0..reps {
                    let mut m2 = mem.clone();
                    let mut dc = Cache::new(CacheConfig::l1_default());
                    r = Some(
                        Lpsu::new(cfg)
                            .execute_stepper(stepper, &s, &mut m2, &mut dc, None)
                            .unwrap(),
                    );
                }
                let dt = t.elapsed().as_secs_f64() / reps as f64;
                let r = r.unwrap();
                println!(
                    "  {label}: first-loop execute {:.0}us for {} cycles ({:.0} ns/cycle)",
                    dt * 1e6,
                    r.cycles,
                    dt * 1e9 / r.cycles as f64
                );
            }
        }
    }
}
