//! The modified loop-strength-reduction pass: affine address expressions
//! become mutual induction variables encoded with `xi` instructions.
//!
//! A subscript `s × i + c` over 4-byte elements means the byte address
//! advances by `4 × s` every iteration. Classic strength reduction turns
//! the multiply into an iterative add — which creates an inter-iteration
//! dependence. XLOOPS instead emits `addiu.xi ptr, ptr, 4s`, letting
//! specialized hardware compute the pointer for *any* iteration from the
//! MIVT (Section II-A, Figure 1(f)).

use crate::ir::{Loop, Stmt, Subscript};

/// One planned cross-iteration pointer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XiPlan {
    /// The array whose accesses the pointer covers.
    pub array: String,
    /// Byte step per iteration (`4 × stride`).
    pub step_bytes: i64,
    /// Byte offset of the access relative to the pointer (`4 × offset`).
    pub offset_bytes: i64,
}

/// Plans `xi` pointers for every affine array access whose subscript
/// involves the loop index with a non-zero stride. Accesses to the same
/// array with the same stride share one pointer (differing only in their
/// constant offsets).
pub fn plan_xi(l: &Loop) -> Vec<XiPlan> {
    let mut plans: Vec<XiPlan> = Vec::new();
    collect(&l.body, &mut plans);
    plans
}

fn push_plan(plans: &mut Vec<XiPlan>, array: &str, sub: &Subscript) {
    if sub.is_opaque() || sub.stride == 0 {
        return;
    }
    let step = 4 * sub.stride;
    if let Some(p) = plans.iter().find(|p| p.array == array && p.step_bytes == step) {
        // Shared pointer; the differing constant folds into the
        // instruction's offset field.
        let _ = p;
        return;
    }
    plans.push(XiPlan { array: array.to_string(), step_bytes: step, offset_bytes: 4 * sub.offset });
}

fn collect(body: &[Stmt], plans: &mut Vec<XiPlan>) {
    for stmt in body {
        match stmt {
            Stmt::Load { src, .. } => push_plan(plans, &src.array, &src.subscript),
            Stmt::Store { dst, .. } => push_plan(plans, &dst.array, &dst.subscript),
            Stmt::If { then, .. } => collect(then, plans),
            Stmt::Nested(inner) => {
                // Inner-loop accesses whose subscript is invariant in the
                // inner index may still be MIVs of the outer loop, but the
                // outer pass only plans for its own index.
                let _ = inner;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Annotation, ArrayRef, Bound, Expr};

    #[test]
    fn plans_one_pointer_per_array_and_stride() {
        let mut l = Loop::new("i", Bound::fixed_var("n"), Annotation::Unordered);
        l.body.push(Stmt::load("a0", ArrayRef::new("a", Subscript::linear(1, 0))));
        l.body.push(Stmt::load("a1", ArrayRef::new("a", Subscript::linear(1, 1))));
        l.body.push(Stmt::store(ArrayRef::new("b", Subscript::linear(2, 0)), Expr::var("a0")));
        let plans = plan_xi(&l);
        assert_eq!(plans.len(), 2, "a (stride 1) and b (stride 2): {plans:?}");
        assert_eq!(plans[0], XiPlan { array: "a".into(), step_bytes: 4, offset_bytes: 0 });
        assert_eq!(plans[1], XiPlan { array: "b".into(), step_bytes: 8, offset_bytes: 0 });
    }

    #[test]
    fn invariant_and_opaque_accesses_get_no_pointer() {
        let mut l = Loop::new("i", Bound::fixed_var("n"), Annotation::Unordered);
        l.body.push(Stmt::load("x", ArrayRef::new("c", Subscript::constant(3))));
        l.body.push(Stmt::store(ArrayRef::new("d", Subscript::opaque()), Expr::var("x")));
        assert!(plan_xi(&l).is_empty());
    }
}
