//! A small loop-level IR: enough structure to express the paper's example
//! kernels (Figures 1–3) and to drive the dependence analyses.

/// Programmer annotation on a loop (`#pragma xloops …` in the paper's C
/// sources). The programmer never specifies *how* an ordered dependence is
/// communicated — the compiler's analyses decide between `or`, `om`, and
/// `orm`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Annotation {
    /// Iterations may run concurrently in any order (`unordered`).
    Unordered,
    /// Inter-iteration dependences must be preserved (`ordered`).
    Ordered,
    /// Iterations may reorder but memory updates must be atomic (`atomic`).
    Atomic,
    /// No annotation: the loop stays serial.
    None,
}

/// Loop bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bound {
    /// Loop-invariant bound (a variable or constant fixed before entry).
    Fixed(Expr),
    /// The loop may monotonically grow its own bound (worklist loops);
    /// the expression is the initial bound.
    Dynamic(Expr),
}

impl Bound {
    /// Fixed bound read from a scalar variable.
    pub fn fixed_var(name: &str) -> Bound {
        Bound::Fixed(Expr::var(name))
    }
}

/// Scalar expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer constant.
    Const(i64),
    /// Scalar variable (including the loop index).
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// Binary operators in [`Expr`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Min,
    Max,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    LtS,
}

// `add`/`sub`/`mul` are associated *constructors* taking two operands by
// value, not the unary-receiver operator traits clippy suggests.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// A variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// An integer constant.
    pub fn konst(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }

    /// Collects every variable read by the expression.
    pub fn vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => out.push(v),
            Expr::Bin(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }
}

/// An affine subscript in the loop index: `stride × i + offset`, where
/// `offset` may reference outer-loop indices symbolically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Subscript {
    /// Coefficient of this loop's index variable.
    pub stride: i64,
    /// Constant part.
    pub offset: i64,
    /// Symbolic terms (outer indices or loop-invariant scalars) with
    /// coefficients; these make a subscript *multiple-index-variable*.
    pub symbols: Vec<(String, i64)>,
    /// Non-affine subscript (e.g. indirect through another array): the
    /// dependence tests must assume it may touch anything.
    pub opaque: bool,
}

impl Subscript {
    /// `stride × i + offset` with no symbolic part.
    pub fn linear(stride: i64, offset: i64) -> Subscript {
        Subscript { stride, offset, symbols: Vec::new(), opaque: false }
    }

    /// A non-affine subscript the tests cannot analyze.
    pub fn opaque() -> Subscript {
        Subscript { opaque: true, ..Subscript::linear(0, 0) }
    }

    /// Whether the subscript defeats the affine tests.
    pub fn is_opaque(&self) -> bool {
        self.opaque
    }

    /// A subscript that does not involve this loop's index at all
    /// (zero-index-variable).
    pub fn constant(offset: i64) -> Subscript {
        Subscript::linear(0, offset)
    }

    /// Adds a symbolic term (e.g. an outer loop index).
    pub fn with_symbol(mut self, name: &str, coeff: i64) -> Subscript {
        self.symbols.push((name.to_string(), coeff));
        self
    }

    /// Whether the subscript references variables other than this loop's
    /// index (the MIV case of the dependence tests).
    pub fn is_miv(&self) -> bool {
        !self.symbols.is_empty()
    }
}

/// A reference to one element of a named array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayRef {
    /// Array name (distinct names are assumed not to alias, as in the
    /// paper's kernels).
    pub array: String,
    /// Element subscript.
    pub subscript: Subscript,
}

impl ArrayRef {
    /// `array[subscript]`.
    pub fn new(array: &str, subscript: Subscript) -> ArrayRef {
        ArrayRef { array: array.to_string(), subscript }
    }
}

/// A statement in a loop body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `dst = expr` over scalars.
    Assign { dst: String, expr: Expr },
    /// `dst = array[sub]`.
    Load { dst: String, src: ArrayRef },
    /// `array[sub] = expr`.
    Store { dst: ArrayRef, expr: Expr },
    /// Atomic fetch-and-add on a scalar memory cell: `dst = cell; cell += expr`.
    AmoAdd { dst: String, cell: String, expr: Expr },
    /// Conditional execution of a block.
    If { cond: Expr, then: Vec<Stmt> },
    /// A nested loop.
    Nested(Box<Loop>),
    /// The loop grows its own bound: `bound = expr` (monotonic).
    GrowBound { expr: Expr },
}

impl Stmt {
    /// `dst = expr`.
    pub fn assign(dst: &str, expr: Expr) -> Stmt {
        Stmt::Assign { dst: dst.to_string(), expr }
    }

    /// `dst = src[…]`.
    pub fn load(dst: &str, src: ArrayRef) -> Stmt {
        Stmt::Load { dst: dst.to_string(), src }
    }

    /// `dst[…] = expr`.
    pub fn store(dst: ArrayRef, expr: Expr) -> Stmt {
        Stmt::Store { dst, expr }
    }
}

/// A counted loop `for (index = 0; index < bound; index++) body`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Loop {
    /// Induction variable name.
    pub index: String,
    /// Loop bound.
    pub bound: Bound,
    /// Programmer annotation.
    pub annotation: Annotation,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Loop {
    /// An empty annotated loop.
    pub fn new(index: &str, bound: Bound, annotation: Annotation) -> Loop {
        Loop { index: index.to_string(), bound, annotation, body: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_vars_collects_reads() {
        let e = Expr::add(Expr::var("a"), Expr::mul(Expr::var("b"), Expr::konst(3)));
        let mut v = Vec::new();
        e.vars(&mut v);
        assert_eq!(v, vec!["a", "b"]);
    }

    #[test]
    fn subscript_classification() {
        assert!(!Subscript::linear(1, 0).is_miv());
        assert!(!Subscript::constant(5).is_miv());
        assert!(Subscript::linear(1, 0).with_symbol("k", 8).is_miv());
    }
}
