//! # xloops-compiler
//!
//! The compiler side of XLOOPS (Section II-B of the paper): lightweight
//! analyses that map *programmer-annotated* loops onto the xloop variants.
//!
//! The paper modifies LLVM-3.1 (LoopRotation and LoopStrengthReduction plus
//! a `#pragma`-tagging preprocessor). An industrial backend is out of scope
//! for a reproduction, but the *contribution* — the analysis and mapping —
//! is small and self-contained, so this crate reimplements it over a
//! loop-level IR:
//!
//! * programmers annotate loops `unordered`, `ordered`, or `atomic`
//!   ([`ir::Annotation`]);
//! * [`analysis`] finds cross-iteration registers (scalars read before
//!   written, discovered through use-def chains) and memory dependences
//!   (zero-, single-, and multiple-index-variable subscript tests);
//! * [`select_pattern`](analysis::select_pattern) chooses
//!   `xloop.{uc,or,om,orm,ua}[.db]` exactly as Section II-B prescribes:
//!   `unordered` → `uc`, `atomic` → `ua`, and `ordered` → whichever of
//!   `or`/`om`/`orm` the dependence tests justify, with `.db` appended when
//!   the loop grows its own bound;
//! * [`strength`] reproduces the modified loop-strength-reduction pass: it
//!   finds affine address expressions and plans `xi`
//!   (cross-iteration) instructions for them;
//! * [`codegen`] lowers simple (non-nested) IR loops to TRISC/XLOOPS
//!   assembly accepted by [`xloops_asm::assemble`], closing the loop from
//!   annotated source to a runnable binary.
//!
//! ```
//! use xloops_compiler::ir::*;
//! use xloops_compiler::analysis::select_pattern;
//! use xloops_isa::DataPattern;
//!
//! // for (i) { sum = sum + a[i]; }  annotated `ordered`
//! let mut l = Loop::new("i", Bound::fixed_var("n"), Annotation::Ordered);
//! l.body.push(Stmt::load("t", ArrayRef::new("a", Subscript::linear(1, 0))));
//! l.body.push(Stmt::assign("sum", Expr::add(Expr::var("sum"), Expr::var("t"))));
//! let choice = select_pattern(&l);
//! assert_eq!(choice.pattern.data, DataPattern::Or); // CIR `sum`, no memory deps
//! ```

pub mod analysis;
pub mod codegen;
pub mod ir;
pub mod strength;
