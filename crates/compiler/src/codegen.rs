//! Lowering simple (non-nested) IR loops to TRISC/XLOOPS assembly.
//!
//! This closes the toolchain loop of Section II-B: an annotated IR loop is
//! analyzed ([`crate::analysis`]), its affine addresses strength-reduced
//! to `xi` pointers ([`crate::strength`]), and the result emitted as
//! assembly that [`xloops_asm::assemble`] turns into a runnable binary.
//!
//! The generator handles the statement forms the paper's figures use:
//! scalar assignments over expressions, affine loads/stores, conditionals,
//! atomic fetch-and-add, and dynamic-bound growth. Nested loops and
//! symbolic (outer-index) subscripts are out of scope — the evaluation
//! kernels are hand-written assembly, as described in `DESIGN.md`.

use std::fmt;

use crate::analysis::select_pattern;
use crate::ir::{BinOp, Bound, Expr, Loop, Stmt, Subscript};
use crate::strength::{plan_xi, XiPlan};

/// Addresses for the memory-resident names a loop references.
#[derive(Clone, Debug, Default)]
pub struct CodegenCtx {
    /// Array (or atomic-cell) name → base byte address.
    pub arrays: Vec<(String, u32)>,
    /// Scalar name → initial value loaded in the preamble.
    pub scalars: Vec<(String, u32)>,
    /// Scalars stored to memory after the loop (live-outs), as
    /// `(name, address)`.
    pub outputs: Vec<(String, u32)>,
    /// Use `xi` cross-iteration pointers for affine addresses instead of
    /// per-iteration shift/add address computation.
    pub use_xi: bool,
}

/// Codegen failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodegenError {
    /// Nested loops are not lowered by this generator.
    NestedLoop,
    /// A subscript references outer indices or is non-affine.
    UnsupportedSubscript,
    /// The loop references a name with no address/value in the context.
    UnknownName(String),
    /// Expression needs more temporaries than the allocator owns.
    TooComplex,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::NestedLoop => f.write_str("nested loops are not supported"),
            CodegenError::UnsupportedSubscript => f.write_str("unsupported subscript form"),
            CodegenError::UnknownName(n) => write!(f, "no binding for `{n}`"),
            CodegenError::TooComplex => f.write_str("expression exceeds the temporary pool"),
        }
    }
}

impl std::error::Error for CodegenError {}

struct Gen<'a> {
    l: &'a Loop,
    ctx: &'a CodegenCtx,
    xi_plans: Vec<XiPlan>,
    out: String,
    /// name → register for arrays (bases), scalars, and xi pointers.
    array_regs: Vec<(String, u8)>,
    scalar_regs: Vec<(String, u8)>,
    xi_regs: Vec<(usize, u8)>,
    next_label: u32,
}

const IDX: u8 = 2;
const BOUND: u8 = 3;
const TMP_BASE: u8 = 20;
const TMP_COUNT: u8 = 10;

impl<'a> Gen<'a> {
    fn line(&mut self, s: &str) {
        self.out.push_str("    ");
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn label(&mut self, prefix: &str) -> String {
        self.next_label += 1;
        format!(".{prefix}{}", self.next_label)
    }

    fn scalar_reg(&self, name: &str) -> Result<u8, CodegenError> {
        if name == self.l.index {
            return Ok(IDX);
        }
        self.scalar_regs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, r)| r)
            .ok_or_else(|| CodegenError::UnknownName(name.to_string()))
    }

    fn array_reg(&self, name: &str) -> Result<u8, CodegenError> {
        self.array_regs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, r)| r)
            .ok_or_else(|| CodegenError::UnknownName(name.to_string()))
    }

    /// Evaluates `e` into a register, using temporaries from `tmp` up.
    fn expr(&mut self, e: &Expr, tmp: u8) -> Result<u8, CodegenError> {
        if tmp >= TMP_BASE + TMP_COUNT {
            return Err(CodegenError::TooComplex);
        }
        match e {
            Expr::Const(v) => {
                self.line(&format!("li r{tmp}, {v}"));
                Ok(tmp)
            }
            Expr::Var(name) => self.scalar_reg(name),
            Expr::Bin(op, a, b) => {
                let ra = self.expr(a, tmp)?;
                let next = if ra == tmp { tmp + 1 } else { tmp };
                let rb = self.expr(b, next)?;
                let rd = tmp;
                match op {
                    BinOp::Add => self.line(&format!("addu r{rd}, r{ra}, r{rb}")),
                    BinOp::Sub => self.line(&format!("subu r{rd}, r{ra}, r{rb}")),
                    BinOp::Mul => self.line(&format!("mul r{rd}, r{ra}, r{rb}")),
                    BinOp::And => self.line(&format!("and r{rd}, r{ra}, r{rb}")),
                    BinOp::Or => self.line(&format!("or r{rd}, r{ra}, r{rb}")),
                    BinOp::Xor => self.line(&format!("xor r{rd}, r{ra}, r{rb}")),
                    BinOp::Shl => self.line(&format!("sllv r{rd}, r{ra}, r{rb}")),
                    BinOp::Shr => self.line(&format!("srlv r{rd}, r{ra}, r{rb}")),
                    BinOp::LtS => self.line(&format!("slt r{rd}, r{ra}, r{rb}")),
                    BinOp::Min | BinOp::Max => {
                        let keep = self.label("m");
                        let scratch = rd + 1;
                        if scratch >= TMP_BASE + TMP_COUNT {
                            return Err(CodegenError::TooComplex);
                        }
                        // rd = a; if (b < a) == (op is Min) { rd = b }
                        self.line(&format!("slt r{scratch}, r{rb}, r{ra}"));
                        self.line(&format!("move r{rd}, r{ra}"));
                        match op {
                            BinOp::Min => self.line(&format!("beqz r{scratch}, {keep}")),
                            _ => self.line(&format!("bnez r{scratch}, {keep}")),
                        }
                        self.line(&format!("move r{rd}, r{rb}"));
                        self.out.push_str(&format!("{keep}:\n"));
                    }
                }
                Ok(rd)
            }
        }
    }

    /// Computes the byte address of an affine access into a temp register
    /// and returns `(reg, constant_offset)` for the memory instruction.
    fn address(
        &mut self,
        array: &str,
        sub: &Subscript,
        tmp: u8,
    ) -> Result<(u8, i32), CodegenError> {
        if sub.is_opaque() || sub.is_miv() {
            return Err(CodegenError::UnsupportedSubscript);
        }
        let base = self.array_reg(array)?;
        if sub.stride == 0 {
            return Ok((base, 4 * sub.offset as i32));
        }
        // Prefer the planned xi pointer when enabled.
        if self.ctx.use_xi {
            if let Some(pos) = self
                .xi_plans
                .iter()
                .position(|p| p.array == array && p.step_bytes == 4 * sub.stride)
            {
                let reg = self.xi_regs.iter().find(|&&(i, _)| i == pos).map(|&(_, r)| r);
                if let Some(r) = reg {
                    return Ok((r, 4 * sub.offset as i32));
                }
            }
        }
        if tmp >= TMP_BASE + TMP_COUNT {
            return Err(CodegenError::TooComplex);
        }
        let shift = 4 * sub.stride;
        if shift > 0 && (shift as u64).is_power_of_two() {
            self.line(&format!("sll r{tmp}, r{IDX}, {}", shift.trailing_zeros()));
        } else {
            self.line(&format!("li r{tmp}, {shift}"));
            self.line(&format!("mul r{tmp}, r{IDX}, r{tmp}"));
        }
        self.line(&format!("addu r{tmp}, r{base}, r{tmp}"));
        Ok((tmp, 4 * sub.offset as i32))
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), CodegenError> {
        for stmt in body {
            match stmt {
                Stmt::Assign { dst, expr } => {
                    let r = self.expr(expr, TMP_BASE)?;
                    let rd = self.scalar_reg(dst)?;
                    if rd != r {
                        self.line(&format!("move r{rd}, r{r}"));
                    }
                }
                Stmt::Load { dst, src } => {
                    let (base, off) = self.address(&src.array, &src.subscript, TMP_BASE)?;
                    let rd = self.scalar_reg(dst)?;
                    self.line(&format!("lw r{rd}, {off}(r{base})"));
                }
                Stmt::Store { dst, expr } => {
                    let r = self.expr(expr, TMP_BASE)?;
                    let (base, off) = self.address(&dst.array, &dst.subscript, TMP_BASE + 4)?;
                    self.line(&format!("sw r{r}, {off}(r{base})"));
                }
                Stmt::AmoAdd { dst, cell, expr } => {
                    let r = self.expr(expr, TMP_BASE)?;
                    let cell_reg = self.array_reg(cell)?;
                    let rd = self.scalar_reg(dst)?;
                    self.line(&format!("amo.add r{rd}, (r{cell_reg}), r{r}"));
                }
                Stmt::If { cond, then } => {
                    let r = self.expr(cond, TMP_BASE)?;
                    let skip = self.label("if");
                    self.line(&format!("beqz r{r}, {skip}"));
                    self.stmts(then)?;
                    self.out.push_str(&format!("{skip}:\n"));
                }
                Stmt::Nested(_) => return Err(CodegenError::NestedLoop),
                Stmt::GrowBound { expr } => {
                    let r = self.expr(expr, TMP_BASE)?;
                    self.line(&format!("move r{BOUND}, r{r}"));
                }
            }
        }
        Ok(())
    }
}

/// Lowers an annotated loop to assembly text (preamble, body, `xloop`,
/// live-out stores, `exit`).
///
/// # Errors
///
/// See [`CodegenError`] for the IR forms the generator rejects.
pub fn lower_loop(l: &Loop, ctx: &CodegenCtx) -> Result<String, CodegenError> {
    let choice = select_pattern(l);
    let xi_plans = if ctx.use_xi { plan_xi(l) } else { Vec::new() };

    let mut gen = Gen {
        l,
        ctx,
        xi_plans,
        out: String::new(),
        array_regs: Vec::new(),
        scalar_regs: Vec::new(),
        xi_regs: Vec::new(),
        next_label: 0,
    };

    // Register plan: r2 index, r3 bound, r4.. array bases, then scalars,
    // then xi pointers; r20..r29 expression temporaries.
    let mut next = 4u8;
    for (name, addr) in &ctx.arrays {
        gen.array_regs.push((name.clone(), next));
        gen.line(&format!("li r{next}, {addr:#x}"));
        next += 1;
    }
    for (name, value) in &ctx.scalars {
        gen.scalar_regs.push((name.clone(), next));
        gen.line(&format!("li r{next}, {value}"));
        next += 1;
    }
    // Scalars written by the body but not pre-bound get a register too.
    let mut defined: Vec<String> = Vec::new();
    collect_defs(&l.body, &mut defined);
    for name in defined {
        if name != l.index && gen.scalar_reg(&name).is_err() {
            gen.scalar_regs.push((name.clone(), next));
            next += 1;
        }
    }
    // xi pointers start one step before the first element (Figure 1(f)).
    for (i, plan) in gen.xi_plans.clone().into_iter().enumerate() {
        let base = ctx
            .arrays
            .iter()
            .find(|(n, _)| *n == plan.array)
            .map(|&(_, a)| a)
            .ok_or_else(|| CodegenError::UnknownName(plan.array.clone()))?;
        gen.xi_regs.push((i, next));
        gen.line(&format!("li r{next}, {}", base as i64 - plan.step_bytes));
        next += 1;
    }
    debug_assert!(next <= TMP_BASE, "register plan overflows into temporaries");

    gen.line(&format!("li r{IDX}, 0"));
    match &l.bound {
        Bound::Fixed(e) | Bound::Dynamic(e) => {
            let r = gen.expr(e, TMP_BASE)?;
            if r != BOUND {
                gen.line(&format!("move r{BOUND}, r{r}"));
            }
        }
    }

    gen.out.push_str("body:\n");
    for (i, reg) in gen.xi_regs.clone() {
        let step = gen.xi_plans[i].step_bytes;
        gen.line(&format!("addiu.xi r{reg}, r{reg}, {step}"));
    }
    gen.stmts(&l.body)?;
    gen.line(&format!("addiu r{IDX}, r{IDX}, 1"));
    gen.line(&format!("xloop.{} body, r{IDX}, r{BOUND}", choice.pattern));

    for (name, addr) in &ctx.outputs {
        let r = gen.scalar_reg(name)?;
        gen.line(&format!("li r{}, {addr:#x}", TMP_BASE));
        gen.line(&format!("sw r{r}, 0(r{})", TMP_BASE));
    }
    gen.line("exit");
    Ok(gen.out)
}

fn collect_defs(body: &[Stmt], out: &mut Vec<String>) {
    for stmt in body {
        match stmt {
            Stmt::Assign { dst, .. } | Stmt::Load { dst, .. } | Stmt::AmoAdd { dst, .. }
                if !out.contains(dst) =>
            {
                out.push(dst.clone());
            }
            Stmt::If { then, .. } => collect_defs(then, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Annotation, ArrayRef};
    use xloops_asm::assemble;

    fn vector_scale_ir() -> (Loop, CodegenCtx) {
        // unordered: b[i] = a[i] * 3
        let mut l = Loop::new("i", Bound::Fixed(Expr::konst(32)), Annotation::Unordered);
        l.body.push(Stmt::load("t", ArrayRef::new("a", Subscript::linear(1, 0))));
        l.body.push(Stmt::assign("t2", Expr::mul(Expr::var("t"), Expr::konst(3))));
        l.body.push(Stmt::store(ArrayRef::new("b", Subscript::linear(1, 0)), Expr::var("t2")));
        let ctx = CodegenCtx {
            arrays: vec![("a".into(), 0x1000), ("b".into(), 0x2000)],
            ..CodegenCtx::default()
        };
        (l, ctx)
    }

    fn run_asm(asm: &str, init: &[(u32, u32)]) -> xloops_mem::Memory {
        let p = assemble(asm).unwrap_or_else(|e| panic!("{e}\n{asm}"));
        let mut mem = xloops_mem::Memory::new();
        for &(a, v) in init {
            mem.write_u32(a, v);
        }
        let mut cpu = xloops_func::Interp::new();
        cpu.run(&p, &mut mem, 1_000_000).expect("runs");
        mem
    }

    #[test]
    fn generated_vector_scale_computes_correctly() {
        let (l, mut ctx) = vector_scale_ir();
        for use_xi in [false, true] {
            ctx.use_xi = use_xi;
            let asm = lower_loop(&l, &ctx).unwrap();
            if use_xi {
                assert!(asm.contains("addiu.xi"), "xi mode emits xi instructions:\n{asm}");
            }
            let init: Vec<(u32, u32)> = (0..32).map(|i| (0x1000 + 4 * i, i + 5)).collect();
            let mem = run_asm(&asm, &init);
            for i in 0..32 {
                assert_eq!(mem.read_u32(0x2000 + 4 * i), 3 * (i + 5), "b[{i}] (xi={use_xi})");
            }
        }
    }

    #[test]
    fn generated_prefix_sum_is_or_and_correct() {
        let mut l = Loop::new("i", Bound::Fixed(Expr::konst(16)), Annotation::Ordered);
        l.body.push(Stmt::load("t", ArrayRef::new("a", Subscript::linear(1, 0))));
        l.body.push(Stmt::assign("sum", Expr::add(Expr::var("sum"), Expr::var("t"))));
        l.body.push(Stmt::store(ArrayRef::new("out", Subscript::linear(1, 0)), Expr::var("sum")));
        let ctx = CodegenCtx {
            arrays: vec![("a".into(), 0x1000), ("out".into(), 0x2000)],
            scalars: vec![("sum".into(), 0)],
            outputs: vec![("sum".into(), 0x3000)],
            ..CodegenCtx::default()
        };
        let asm = lower_loop(&l, &ctx).unwrap();
        assert!(asm.contains("xloop.or body"), "{asm}");
        let init: Vec<(u32, u32)> = (0..16).map(|i| (0x1000 + 4 * i, i)).collect();
        let mem = run_asm(&asm, &init);
        assert_eq!(mem.read_u32(0x3000), (0..16).sum::<u32>());
        assert_eq!(mem.read_u32(0x2000 + 4 * 3), 1 + 2 + 3);
    }

    #[test]
    fn generated_conditional_max_is_correct() {
        use crate::ir::BinOp;
        let mut l = Loop::new("i", Bound::Fixed(Expr::konst(10)), Annotation::Ordered);
        l.body.push(Stmt::load("t", ArrayRef::new("a", Subscript::linear(1, 0))));
        l.body.push(Stmt::If {
            cond: Expr::Bin(BinOp::LtS, Box::new(Expr::var("m")), Box::new(Expr::var("t"))),
            then: vec![Stmt::assign("m", Expr::var("t"))],
        });
        let ctx = CodegenCtx {
            arrays: vec![("a".into(), 0x1000)],
            scalars: vec![("m".into(), 0)],
            outputs: vec![("m".into(), 0x3000)],
            ..CodegenCtx::default()
        };
        let asm = lower_loop(&l, &ctx).unwrap();
        assert!(asm.contains("xloop.or"), "conditional write keeps m a CIR:\n{asm}");
        let vals = [3u32, 9, 1, 12, 7, 2, 12, 5, 0, 11];
        let init: Vec<(u32, u32)> =
            vals.iter().enumerate().map(|(i, &v)| (0x1000 + 4 * i as u32, v)).collect();
        let mem = run_asm(&asm, &init);
        assert_eq!(mem.read_u32(0x3000), 12);
    }

    #[test]
    fn min_max_expressions_lower_correctly() {
        let mut l = Loop::new("i", Bound::Fixed(Expr::konst(8)), Annotation::Unordered);
        l.body.push(Stmt::load("x", ArrayRef::new("a", Subscript::linear(1, 0))));
        l.body.push(Stmt::load("y", ArrayRef::new("b", Subscript::linear(1, 0))));
        l.body.push(Stmt::store(
            ArrayRef::new("lo", Subscript::linear(1, 0)),
            Expr::Bin(BinOp::Min, Box::new(Expr::var("x")), Box::new(Expr::var("y"))),
        ));
        l.body.push(Stmt::store(
            ArrayRef::new("hi", Subscript::linear(1, 0)),
            Expr::Bin(BinOp::Max, Box::new(Expr::var("x")), Box::new(Expr::var("y"))),
        ));
        let ctx = CodegenCtx {
            arrays: vec![
                ("a".into(), 0x1000),
                ("b".into(), 0x1100),
                ("lo".into(), 0x1200),
                ("hi".into(), 0x1300),
            ],
            ..CodegenCtx::default()
        };
        let asm = lower_loop(&l, &ctx).unwrap();
        let mut init = Vec::new();
        for i in 0..8u32 {
            init.push((0x1000 + 4 * i, 10 + i));
            init.push((0x1100 + 4 * i, 17 - i));
        }
        let mem = run_asm(&asm, &init);
        for i in 0..8u32 {
            assert_eq!(mem.read_u32(0x1200 + 4 * i), (10 + i).min(17 - i), "lo[{i}]");
            assert_eq!(mem.read_u32(0x1300 + 4 * i), (10 + i).max(17 - i), "hi[{i}]");
        }
    }

    #[test]
    fn nested_loops_are_rejected() {
        let mut l = Loop::new("i", Bound::Fixed(Expr::konst(4)), Annotation::Unordered);
        l.body.push(Stmt::Nested(Box::new(Loop::new(
            "j",
            Bound::Fixed(Expr::konst(4)),
            Annotation::None,
        ))));
        let e = lower_loop(&l, &CodegenCtx::default());
        assert_eq!(e.unwrap_err(), CodegenError::NestedLoop);
    }

    #[test]
    fn generated_code_runs_specialized_on_the_lpsu() {
        // End-to-end: IR → asm → specialized execution on io+x.
        use xloops_sim::{ExecMode, System, SystemConfig};
        let (l, mut ctx) = vector_scale_ir();
        ctx.use_xi = true;
        let asm = lower_loop(&l, &ctx).unwrap();
        let p = assemble(&asm).unwrap();
        let mut sys = System::new(SystemConfig::io_x());
        for i in 0..32 {
            sys.store_word(0x1000 + 4 * i, i + 5);
        }
        let stats = sys.run(&p, ExecMode::Specialized).unwrap();
        assert_eq!(stats.xloops_specialized, 1);
        assert!(stats.lpsu.xi_ops > 0, "xi pointers exercised on the LPSU");
        for i in 0..32 {
            assert_eq!(sys.load_word(0x2000 + 4 * i), 3 * (i + 5));
        }
    }
}
