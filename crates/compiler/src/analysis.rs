//! Register and memory dependence analysis, and the annotation → xloop
//! mapping of Section II-B.

use std::collections::HashSet;

use xloops_isa::{ControlPattern, DataPattern, LoopPattern};

use crate::ir::{Annotation, ArrayRef, Bound, Loop, Stmt, Subscript};

/// A cross-iteration memory dependence between two accesses of one array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemDep {
    /// The array involved.
    pub array: String,
    /// Which subscript test established the dependence.
    pub test: DepTest,
}

/// The subscript test that fired (Section II-B cites the zero-, single-,
/// and multiple-index-variable tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepTest {
    /// Zero index variables: both subscripts constant and equal.
    Ziv,
    /// Single index variable: strong/weak SIV or GCD on one index.
    Siv,
    /// Multiple index variables: conservative GCD test.
    Miv,
    /// Non-affine subscript: assumed dependent.
    Opaque,
}

/// Result of [`select_pattern`].
#[derive(Clone, Debug, PartialEq)]
pub struct PatternChoice {
    /// The xloop variant the loop should be encoded with, or `None` when
    /// the loop carries no annotation (stays serial).
    pub pattern: LoopPattern,
    /// Cross-iteration registers found by the scalar analysis (only
    /// meaningful for ordered loops).
    pub cirs: Vec<String>,
    /// Cross-iteration memory dependences found by the subscript tests.
    pub mem_deps: Vec<MemDep>,
}

/// Finds the scalars that behave as cross-iteration registers: values
/// *read before they are (definitely) written* and written somewhere in
/// the body — the use-def-chain analysis the paper implements over PHI
/// nodes. Writes under a condition do not count as definite, so a
/// conditionally-updated running value (e.g. a running maximum) is
/// correctly classified as a CIR.
pub fn scalar_cirs(l: &Loop) -> Vec<String> {
    let mut read_first: Vec<String> = Vec::new();
    let mut written_any: HashSet<String> = HashSet::new();
    let mut written_def: HashSet<String> = HashSet::new();
    walk_scalars(&l.body, false, &mut read_first, &mut written_any, &mut written_def);
    read_first.retain(|v| written_any.contains(v) && v != &l.index);
    read_first
}

fn note_read(v: &str, read_first: &mut Vec<String>, written_def: &HashSet<String>) {
    if !written_def.contains(v) && !read_first.iter().any(|r| r == v) {
        read_first.push(v.to_string());
    }
}

fn walk_scalars(
    body: &[Stmt],
    conditional: bool,
    read_first: &mut Vec<String>,
    written_any: &mut HashSet<String>,
    written_def: &mut HashSet<String>,
) {
    for stmt in body {
        match stmt {
            Stmt::Assign { dst, expr } => {
                let mut vars = Vec::new();
                expr.vars(&mut vars);
                for v in vars {
                    note_read(v, read_first, written_def);
                }
                written_any.insert(dst.clone());
                if !conditional {
                    written_def.insert(dst.clone());
                }
            }
            Stmt::Load { dst, src } => {
                for (sym, _) in &src.subscript.symbols {
                    note_read(sym, read_first, written_def);
                }
                written_any.insert(dst.clone());
                if !conditional {
                    written_def.insert(dst.clone());
                }
            }
            Stmt::Store { dst, expr } => {
                let mut vars = Vec::new();
                expr.vars(&mut vars);
                for (sym, _) in &dst.subscript.symbols {
                    vars.push(sym);
                }
                for v in vars {
                    note_read(v, read_first, written_def);
                }
            }
            Stmt::AmoAdd { dst, expr, .. } => {
                let mut vars = Vec::new();
                expr.vars(&mut vars);
                for v in vars {
                    note_read(v, read_first, written_def);
                }
                written_any.insert(dst.clone());
                if !conditional {
                    written_def.insert(dst.clone());
                }
            }
            Stmt::If { cond, then } => {
                let mut vars = Vec::new();
                cond.vars(&mut vars);
                for v in vars {
                    note_read(v, read_first, written_def);
                }
                walk_scalars(then, true, read_first, written_any, written_def);
            }
            Stmt::Nested(inner) => {
                // The inner loop reads its bound; its body's reads count
                // against the outer iteration conservatively.
                let mut vars = Vec::new();
                match &inner.bound {
                    Bound::Fixed(e) | Bound::Dynamic(e) => e.vars(&mut vars),
                }
                for v in vars {
                    note_read(v, read_first, written_def);
                }
                walk_scalars(&inner.body, true, read_first, written_any, written_def);
            }
            Stmt::GrowBound { expr } => {
                let mut vars = Vec::new();
                expr.vars(&mut vars);
                for v in vars {
                    note_read(v, read_first, written_def);
                }
            }
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Tests a (write, read-or-write) subscript pair of one array for a
/// *cross-iteration* dependence. Returns which test fired, or `None` when
/// independence is proven.
pub fn subscript_dep(a: &Subscript, b: &Subscript) -> Option<DepTest> {
    if a.is_opaque() || b.is_opaque() {
        return Some(DepTest::Opaque);
    }
    if a.is_miv() || b.is_miv() {
        // MIV: if the symbolic parts are identical, reduce to SIV on the
        // index; otherwise fall back to the conservative GCD test over all
        // coefficients.
        if a.symbols == b.symbols {
            return siv(a.stride, a.offset, b.stride, b.offset);
        }
        let mut g = gcd(a.stride, b.stride);
        for (_, c) in a.symbols.iter().chain(&b.symbols) {
            g = gcd(g, *c);
        }
        let delta = b.offset - a.offset;
        return if g == 0 {
            // Both sides constant apart from symbols that differ; cannot
            // prove independence.
            Some(DepTest::Miv)
        } else if delta % g == 0 {
            Some(DepTest::Miv)
        } else {
            None
        };
    }
    if a.stride == 0 && b.stride == 0 {
        // ZIV: constant subscripts.
        return if a.offset == b.offset { Some(DepTest::Ziv) } else { None };
    }
    siv(a.stride, a.offset, b.stride, b.offset)
}

fn siv(a1: i64, o1: i64, a2: i64, o2: i64) -> Option<DepTest> {
    let delta = o2 - o1;
    if a1 == a2 {
        // Strong SIV: dependence distance delta / a1.
        if a1 != 0 && delta % a1 == 0 && delta != 0 {
            return Some(DepTest::Siv);
        }
        // delta == 0 is a same-iteration access: no *cross-iteration* dep.
        return None;
    }
    // Weak SIV / general: GCD test.
    let g = gcd(a1, a2);
    if g == 0 {
        return None;
    }
    if delta % g == 0 {
        Some(DepTest::Siv)
    } else {
        None
    }
}

/// Collects every (array, subscript, is_write) access in a body,
/// flattening conditionals and nested loops (nested-loop subscripts treat
/// the inner index symbolically, which the IR already encodes).
fn accesses<'a>(body: &'a [Stmt], out: &mut Vec<(&'a ArrayRef, bool)>) {
    for stmt in body {
        match stmt {
            Stmt::Load { src, .. } => out.push((src, false)),
            Stmt::Store { dst, .. } => out.push((dst, true)),
            Stmt::AmoAdd { .. } => {} // atomic by construction
            Stmt::If { then, .. } => accesses(then, out),
            Stmt::Nested(inner) => accesses(&inner.body, out),
            _ => {}
        }
    }
}

/// Runs the subscript tests over every write/access pair of the loop body.
pub fn memory_dependences(l: &Loop) -> Vec<MemDep> {
    let mut accs = Vec::new();
    accesses(&l.body, &mut accs);
    let mut deps = Vec::new();
    for (i, &(a, a_write)) in accs.iter().enumerate() {
        for &(b, b_write) in &accs[i..] {
            if !(a_write || b_write) || a.array != b.array {
                continue;
            }
            if let Some(test) = subscript_dep(&a.subscript, &b.subscript) {
                let dep = MemDep { array: a.array.clone(), test };
                if !deps.contains(&dep) {
                    deps.push(dep);
                }
            }
        }
    }
    deps
}

/// Whether the body grows its own bound (the `.db` detection pass).
pub fn grows_bound(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::GrowBound { .. } => true,
        Stmt::If { then, .. } => grows_bound(then),
        _ => false,
    })
}

/// Maps an annotated loop to its xloop variant (Section II-B):
///
/// * `unordered` → `xloop.uc`
/// * `atomic` → `xloop.ua`
/// * `ordered` → `xloop.or` / `xloop.om` / `xloop.orm` depending on what
///   the register and memory dependence analyses find (an ordered loop
///   with no discovered dependences is encoded `uc`, the least
///   restrictive valid pattern);
///
/// `.db` is appended when the loop updates its own bound.
///
/// # Panics
///
/// Panics if the loop carries [`Annotation::None`]; unannotated loops are
/// not xloops.
pub fn select_pattern(l: &Loop) -> PatternChoice {
    let control = if grows_bound(&l.body) || matches!(l.bound, Bound::Dynamic(_)) {
        ControlPattern::Dynamic
    } else {
        ControlPattern::Fixed
    };
    let (data, cirs, mem_deps) = match l.annotation {
        Annotation::None => panic!("select_pattern requires an annotated loop"),
        Annotation::Unordered => (DataPattern::Uc, Vec::new(), Vec::new()),
        Annotation::Atomic => (DataPattern::Ua, Vec::new(), Vec::new()),
        Annotation::Ordered => {
            let cirs = scalar_cirs(l);
            let deps = memory_dependences(l);
            let data = match (!cirs.is_empty(), !deps.is_empty()) {
                (true, true) => DataPattern::Orm,
                (true, false) => DataPattern::Or,
                (false, true) => DataPattern::Om,
                (false, false) => DataPattern::Uc,
            };
            (data, cirs, deps)
        }
    };
    PatternChoice { pattern: LoopPattern { data, control }, cirs, mem_deps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr;

    #[test]
    fn prefix_sum_is_or() {
        // ordered: sum = sum + a[i]
        let mut l = Loop::new("i", Bound::fixed_var("n"), Annotation::Ordered);
        l.body.push(Stmt::load("t", ArrayRef::new("a", Subscript::linear(1, 0))));
        l.body.push(Stmt::assign("sum", Expr::add(Expr::var("sum"), Expr::var("t"))));
        l.body.push(Stmt::store(ArrayRef::new("out", Subscript::linear(1, 0)), Expr::var("sum")));
        let c = select_pattern(&l);
        assert_eq!(c.pattern.data, DataPattern::Or);
        assert_eq!(c.cirs, vec!["sum".to_string()]);
        assert!(c.mem_deps.is_empty());
    }

    #[test]
    fn recurrence_through_memory_is_om() {
        // ordered: a[i] = a[i-3] + 7 — strong SIV with distance 3.
        let mut l = Loop::new("i", Bound::fixed_var("n"), Annotation::Ordered);
        l.body.push(Stmt::load("t", ArrayRef::new("a", Subscript::linear(1, -3))));
        l.body.push(Stmt::assign("t2", Expr::add(Expr::var("t"), Expr::konst(7))));
        l.body.push(Stmt::store(ArrayRef::new("a", Subscript::linear(1, 0)), Expr::var("t2")));
        let c = select_pattern(&l);
        assert_eq!(c.pattern.data, DataPattern::Om);
        assert_eq!(c.mem_deps, vec![MemDep { array: "a".into(), test: DepTest::Siv }]);
    }

    #[test]
    fn ordered_loop_with_no_dependences_relaxes_to_uc() {
        // ordered but actually parallel: b[i] = a[i] * 2.
        let mut l = Loop::new("i", Bound::fixed_var("n"), Annotation::Ordered);
        l.body.push(Stmt::load("t", ArrayRef::new("a", Subscript::linear(1, 0))));
        l.body.push(Stmt::assign("t2", Expr::mul(Expr::var("t"), Expr::konst(2))));
        l.body.push(Stmt::store(ArrayRef::new("b", Subscript::linear(1, 0)), Expr::var("t2")));
        assert_eq!(select_pattern(&l).pattern.data, DataPattern::Uc);
    }

    #[test]
    fn mm_style_loop_is_orm() {
        // Figure 3: ordered; out[k++] = i with indirect vertex updates.
        let mut l = Loop::new("i", Bound::fixed_var("n"), Annotation::Ordered);
        l.body.push(Stmt::load("v", ArrayRef::new("edges", Subscript::linear(2, 0))));
        l.body.push(Stmt::load("u", ArrayRef::new("edges", Subscript::linear(2, 1))));
        l.body.push(Stmt::If {
            cond: Expr::var("free"),
            then: vec![
                Stmt::store(ArrayRef::new("vertices", Subscript::opaque()), Expr::var("u")),
                Stmt::store(ArrayRef::new("vertices", Subscript::opaque()), Expr::var("v")),
                Stmt::store(
                    ArrayRef::new("out", Subscript::constant(0).with_symbol("k", 1)),
                    Expr::var("i"),
                ),
                Stmt::assign("k", Expr::add(Expr::var("k"), Expr::konst(1))),
            ],
        });
        let c = select_pattern(&l);
        assert_eq!(c.pattern.data, DataPattern::Orm, "k is a CIR and vertices[] is opaque");
        assert!(c.cirs.contains(&"k".to_string()));
        assert!(c.mem_deps.iter().any(|d| d.test == DepTest::Opaque));
    }

    #[test]
    fn war_outer_loop_is_om_inner_is_uc() {
        // Figure 2: path[i][j] = min(path[i][j], path[i][k] + path[k][j]).
        // Inner j-loop (unordered by annotation):
        let mut inner = Loop::new("j", Bound::fixed_var("n"), Annotation::Unordered);
        inner.body.push(Stmt::load(
            "pij",
            ArrayRef::new("path", Subscript::linear(1, 0).with_symbol("i", 64)),
        ));
        inner.body.push(Stmt::load(
            "pik",
            ArrayRef::new("path", Subscript::constant(0).with_symbol("i", 64).with_symbol("k", 1)),
        ));
        inner.body.push(Stmt::load(
            "pkj",
            ArrayRef::new("path", Subscript::linear(1, 0).with_symbol("k", 64)),
        ));
        inner.body.push(Stmt::store(
            ArrayRef::new("path", Subscript::linear(1, 0).with_symbol("i", 64)),
            Expr::var("m"),
        ));
        assert_eq!(select_pattern(&inner).pattern.data, DataPattern::Uc);

        // Middle i-loop (ordered by annotation): subscripts seen from i.
        let mut mid = Loop::new("i", Bound::fixed_var("n"), Annotation::Ordered);
        mid.body.push(Stmt::load(
            "pij",
            ArrayRef::new("path", Subscript::linear(64, 0).with_symbol("j", 1)),
        ));
        mid.body.push(Stmt::load(
            "pkj",
            ArrayRef::new("path", Subscript::constant(0).with_symbol("k", 64).with_symbol("j", 1)),
        ));
        mid.body.push(Stmt::store(
            ArrayRef::new("path", Subscript::linear(64, 0).with_symbol("j", 1)),
            Expr::var("m"),
        ));
        let c = select_pattern(&mid);
        assert_eq!(c.pattern.data, DataPattern::Om, "store path[i][j] vs load path[k][j]");
    }

    #[test]
    fn worklist_loop_gets_db_suffix() {
        let mut l = Loop::new("i", Bound::Dynamic(Expr::var("tail")), Annotation::Unordered);
        l.body.push(Stmt::AmoAdd {
            dst: "slot".into(),
            cell: "tail_cell".into(),
            expr: Expr::konst(2),
        });
        l.body.push(Stmt::GrowBound { expr: Expr::add(Expr::var("slot"), Expr::konst(2)) });
        let c = select_pattern(&l);
        assert_eq!(c.pattern.to_string(), "uc.db");
    }

    #[test]
    fn ziv_same_cell_is_a_dependence_different_cells_are_not() {
        assert_eq!(
            subscript_dep(&Subscript::constant(4), &Subscript::constant(4)),
            Some(DepTest::Ziv)
        );
        assert_eq!(subscript_dep(&Subscript::constant(4), &Subscript::constant(8)), None);
    }

    #[test]
    fn strong_siv_distance_zero_is_independent() {
        // a[i] read and written in the same iteration only.
        assert_eq!(subscript_dep(&Subscript::linear(1, 0), &Subscript::linear(1, 0)), None);
        assert_eq!(
            subscript_dep(&Subscript::linear(1, 0), &Subscript::linear(1, 4)),
            Some(DepTest::Siv)
        );
        // Interleaved strides that never meet: 2i vs 2i+1.
        assert_eq!(subscript_dep(&Subscript::linear(2, 0), &Subscript::linear(2, 1)), None);
    }

    #[test]
    fn gcd_test_proves_independence_across_strides() {
        // 4i vs 4i'+2: gcd 4 does not divide 2.
        assert_eq!(subscript_dep(&Subscript::linear(4, 0), &Subscript::linear(4, 2)), None);
        // 2i vs 4i'+2 can meet (i=3, i'=1): gcd 2 divides 2.
        assert_eq!(
            subscript_dep(&Subscript::linear(2, 0), &Subscript::linear(4, 2)),
            Some(DepTest::Siv)
        );
    }

    #[test]
    fn conditional_write_keeps_scalar_a_cir() {
        // running max: if (a[i] > m) m = a[i]  — m must be a CIR.
        let mut l = Loop::new("i", Bound::fixed_var("n"), Annotation::Ordered);
        l.body.push(Stmt::load("t", ArrayRef::new("a", Subscript::linear(1, 0))));
        l.body.push(Stmt::If {
            cond: Expr::Bin(
                crate::ir::BinOp::LtS,
                Box::new(Expr::var("m")),
                Box::new(Expr::var("t")),
            ),
            then: vec![Stmt::assign("m", Expr::var("t"))],
        });
        let c = select_pattern(&l);
        assert!(c.cirs.contains(&"m".to_string()), "{:?}", c.cirs);
    }
}
