//! The architectural state every timing model shares.
//!
//! XLOOPS' portability claim — one binary on a GPP, an LPSU, or adaptively
//! between them — rests on all engines agreeing on *what* the architectural
//! state is, even while they disagree on *when* it changes. [`ArchState`] is
//! that common substrate: a 32-entry register file plus a program counter,
//! nothing else. The functional interpreter owns one; each LPSU lane context
//! owns one (with the pc rebased to the loop body); the GPP cores execute
//! through the interpreter's.

use xloops_isa::{Reg, NUM_REGS};

/// Architectural register file + pc. Registers start at zero; `r0` reads as
/// zero and ignores writes (when accessed through [`ArchState::set_reg`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchState {
    /// Current program counter (byte address).
    pub pc: u32,
    regs: [u32; NUM_REGS],
}

impl Default for ArchState {
    fn default() -> ArchState {
        ArchState::new()
    }
}

impl ArchState {
    /// Creates a state with pc 0 and all registers zero.
    pub fn new() -> ArchState {
        ArchState { pc: 0, regs: [0; NUM_REGS] }
    }

    /// Reads a register (reads of `r0` return 0).
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `r0` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// The raw register file (index 0 is `r0` and always reads 0 here,
    /// because writes through [`ArchState::set_reg`] never touch it).
    #[inline]
    pub fn regs(&self) -> &[u32; NUM_REGS] {
        &self.regs
    }

    /// Mutable access to the raw register file, for bulk initialisation
    /// (LPSU lanes load a whole live-in image per iteration) and for timing
    /// models whose hot paths index registers directly. Callers must keep
    /// the `r0 == 0` invariant themselves.
    #[inline]
    pub fn regs_mut(&mut self) -> &mut [u32; NUM_REGS] {
        &mut self.regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_reads_zero_and_ignores_writes() {
        let mut s = ArchState::new();
        s.set_reg(Reg::ZERO, 55);
        assert_eq!(s.reg(Reg::ZERO), 0);
        s.set_reg(Reg::new(5), 7);
        assert_eq!(s.reg(Reg::new(5)), 7);
        assert_eq!(s.regs()[5], 7);
    }
}
