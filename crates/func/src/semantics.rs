//! The single shared definition of what every TRISC/XLOOPS instruction
//! *does* — independent of any timing model's opinion about *when* it
//! happens.
//!
//! [`apply`] executes one instruction against an [`ArchState`] and a
//! [`MemPort`], and returns an [`Effect`] describing everything that
//! happened: the register written, the memory address touched, whether a
//! control transfer redirected the pc, and the pc after the instruction.
//! Timing models (the in-order and out-of-order GPP cores, the LPSU lanes)
//! layer their slot/port/queue accounting over the effect; the functional
//! interpreter simply applies effects back-to-back. There is exactly one
//! copy of the semantics in the workspace — a repo test
//! (`tests/semantics_single_source.rs`) greps the engines to keep it that
//! way.
//!
//! A timing model that must *refuse* an instruction mid-execution (the LPSU
//! blocks on LSQ capacity and memory-port arbitration) does so through its
//! [`MemPort`] implementation: every instruction performs at most one memory
//! operation, and `apply` writes no architectural state before that
//! operation succeeds, so an `Err` from the port aborts the instruction with
//! zero side effects.
//!
//! The one ISA-sanctioned semantic degree of freedom is `xi`: traditional
//! execution treats it as a plain serial add (the [`apply`] behaviour),
//! while LPSU lanes may compute mutual-induction values positionally from
//! the MIVT. Both formulas live here — [`xi_step`] and [`xi_mivt`] — so the
//! engines choose a formula rather than re-implement one.

use std::convert::Infallible;
use std::fmt;

use xloops_isa::{AluOp, AmoOp, Instr, LlfuOp, MemOp, Reg, XiKind, INSTR_BYTES};
use xloops_mem::Memory;

use crate::state::ArchState;

/// An architectural fault raised by the semantics layer itself, before any
/// memory port is consulted. Faults are program bugs (or injected faults
/// upstream), not structural refusals: a timing model must surface them,
/// never retry them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecFault {
    /// A halfword/word/atomic access whose address is not naturally
    /// aligned. The ISA defines no misaligned accesses.
    Misaligned {
        /// Effective address of the access.
        addr: u32,
        /// Required alignment in bytes (2 or 4).
        align: u32,
        /// Whether the access was a store (or atomic).
        store: bool,
    },
}

impl fmt::Display for ExecFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ExecFault::Misaligned { addr, align, store } => write!(
                f,
                "misaligned {} at {addr:#x} (requires {align}-byte alignment)",
                if store { "store" } else { "load" }
            ),
        }
    }
}

impl std::error::Error for ExecFault {}

/// Why [`apply`] could not execute an instruction. Either way **no**
/// architectural state has changed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyError<B> {
    /// The memory port refused the access this cycle (structural hazard):
    /// retry later reproduces the instruction exactly.
    Blocked(B),
    /// The instruction itself is illegal to execute (e.g. a misaligned
    /// access): retrying can never succeed.
    Fault(ExecFault),
}

/// Where an instruction's memory operation goes. `Memory` itself is the
/// direct architectural port used by the functional interpreter; timing
/// models route accesses through their own implementation (LSQs, shared
/// port arbitration, caches) and may refuse an access with their own
/// [`MemPort::Block`] reason.
pub trait MemPort {
    /// Why an access cannot be performed this cycle. [`Infallible`] for
    /// direct architectural access.
    type Block;

    /// Performs a load and returns the loaded (extended) value.
    fn load(&mut self, op: MemOp, addr: u32) -> Result<u32, Self::Block>;

    /// Performs a store.
    fn store(&mut self, op: MemOp, addr: u32, value: u32) -> Result<(), Self::Block>;

    /// Performs an atomic read-modify-write and returns the old value.
    fn amo(&mut self, op: AmoOp, addr: u32, operand: u32) -> Result<u32, Self::Block>;
}

/// Direct architectural access: always succeeds.
impl MemPort for Memory {
    type Block = Infallible;

    #[inline]
    fn load(&mut self, op: MemOp, addr: u32) -> Result<u32, Infallible> {
        Ok(load(self, op, addr))
    }

    #[inline]
    fn store(&mut self, op: MemOp, addr: u32, value: u32) -> Result<(), Infallible> {
        store(self, op, addr, value);
        Ok(())
    }

    #[inline]
    fn amo(&mut self, op: AmoOp, addr: u32, operand: u32) -> Result<u32, Infallible> {
        Ok(Memory::amo(self, op, addr, operand))
    }
}

/// Timing-relevant instruction classification. Everything a timing model
/// needs to pick a latency/slot rule without re-matching on [`Instr`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EffectClass {
    /// Single-cycle integer ops (`alu`, `alu-imm`, `lui`, `nop`).
    Alu,
    /// Long-latency functional unit op (mul/div/FP), with the op for its
    /// latency and pipelining class.
    Llfu(LlfuOp),
    /// Memory load.
    Load(MemOp),
    /// Memory store.
    Store(MemOp),
    /// Atomic read-modify-write.
    Amo,
    /// Conditional branch.
    Branch,
    /// Direct jump (`j`, `jal`).
    Jump,
    /// Indirect jump (`jr`, `jalr`).
    JumpReg,
    /// Memory fence.
    Sync,
    /// Program termination.
    Exit,
    /// `xloop` — a conditional backward branch under traditional semantics.
    Xloop,
    /// Cross-iteration instruction.
    Xi,
}

/// Classifies an instruction without executing it (pre-decode for timing
/// models that cache per-instruction metadata).
#[inline]
pub fn classify(instr: Instr) -> EffectClass {
    match instr {
        Instr::Alu { .. } | Instr::AluImm { .. } | Instr::Lui { .. } | Instr::Nop => {
            EffectClass::Alu
        }
        Instr::Llfu { op, .. } => EffectClass::Llfu(op),
        Instr::Mem { op, .. } => {
            if op.is_load() {
                EffectClass::Load(op)
            } else {
                EffectClass::Store(op)
            }
        }
        Instr::Amo { .. } => EffectClass::Amo,
        Instr::Branch { .. } => EffectClass::Branch,
        Instr::Jump { .. } => EffectClass::Jump,
        Instr::JumpReg { .. } => EffectClass::JumpReg,
        Instr::Sync => EffectClass::Sync,
        Instr::Exit => EffectClass::Exit,
        Instr::Xloop { .. } => EffectClass::Xloop,
        Instr::Xi { .. } => EffectClass::Xi,
    }
}

/// What one instruction did — the semantics layer's report to the timing
/// model. Semantics decides *what*; the consumer decides *when*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Effect {
    /// Timing class of the executed instruction.
    pub class: EffectClass,
    /// Destination register and the value written. Like [`Instr::dst`],
    /// writes to `r0` are reported here even though the architectural write
    /// is discarded.
    pub wrote: Option<(Reg, u32)>,
    /// Memory address touched, if any (whether it was a write follows from
    /// `class`).
    pub mem_addr: Option<u32>,
    /// Whether a conditional control transfer was taken. Unconditional
    /// jumps report `true`.
    pub taken: bool,
    /// pc after the instruction (`Exit` leaves the pc in place).
    pub next_pc: u32,
}

/// Executes `instr` as the instruction at `state.pc`, updating registers,
/// pc, and memory, and reporting what happened.
///
/// # Errors
///
/// [`ApplyError::Blocked`] propagates the memory port's refusal;
/// [`ApplyError::Fault`] reports an architectural fault (a misaligned
/// halfword/word/atomic access, checked *before* the port is consulted).
/// In both cases **no** architectural state has changed (each instruction
/// performs at most one memory operation, and all register/pc updates
/// happen after it succeeds).
#[inline]
pub fn apply<M: MemPort>(
    instr: Instr,
    state: &mut ArchState,
    mem: &mut M,
) -> Result<Effect, ApplyError<M::Block>> {
    let pc = state.pc;
    let mut next_pc = pc.wrapping_add(INSTR_BYTES);
    let mut wrote = None;
    let mut mem_addr = None;
    let mut taken = false;
    let class = classify(instr);
    match instr {
        Instr::Alu { op, rd, rs, rt } => {
            let v = op.apply(state.reg(rs), state.reg(rt));
            state.set_reg(rd, v);
            wrote = Some((rd, v));
        }
        Instr::AluImm { op, rd, rs, imm } => {
            let v = op.apply(state.reg(rs), alu_imm_value(op, imm));
            state.set_reg(rd, v);
            wrote = Some((rd, v));
        }
        Instr::Lui { rd, imm } => {
            let v = (imm as u32) << 16;
            state.set_reg(rd, v);
            wrote = Some((rd, v));
        }
        Instr::Llfu { op, rd, rs, rt } => {
            let v = op.apply(state.reg(rs), state.reg(rt));
            state.set_reg(rd, v);
            wrote = Some((rd, v));
        }
        Instr::Amo { op, rd, addr, src } => {
            let a = state.reg(addr);
            mem_addr = Some(a);
            if !a.is_multiple_of(4) {
                return Err(ApplyError::Fault(ExecFault::Misaligned {
                    addr: a,
                    align: 4,
                    store: true,
                }));
            }
            let old = mem.amo(op, a, state.reg(src)).map_err(ApplyError::Blocked)?;
            state.set_reg(rd, old);
            wrote = Some((rd, old));
        }
        Instr::Mem { op, data, base, offset } => {
            let addr = state.reg(base).wrapping_add(offset as i32 as u32);
            mem_addr = Some(addr);
            let align = op.size();
            if align > 1 && !addr.is_multiple_of(align) {
                return Err(ApplyError::Fault(ExecFault::Misaligned {
                    addr,
                    align,
                    store: !op.is_load(),
                }));
            }
            if op.is_load() {
                let v = mem.load(op, addr).map_err(ApplyError::Blocked)?;
                state.set_reg(data, v);
                wrote = Some((data, v));
            } else {
                mem.store(op, addr, state.reg(data)).map_err(ApplyError::Blocked)?;
            }
        }
        Instr::Branch { cond, rs, rt, offset } => {
            if cond.eval(state.reg(rs), state.reg(rt)) {
                taken = true;
                next_pc = branch_target(pc, offset);
            }
        }
        Instr::Jump { link, target_word } => {
            taken = true;
            if link {
                state.set_reg(Reg::RA, next_pc);
                wrote = Some((Reg::RA, next_pc));
            }
            next_pc = target_word * INSTR_BYTES;
        }
        Instr::JumpReg { link, rd, rs } => {
            taken = true;
            // The target is read before the link write (`jalr r1, r1` jumps
            // to the *old* r1).
            let target = state.reg(rs);
            if link {
                state.set_reg(rd, next_pc);
                wrote = Some((rd, next_pc));
            }
            next_pc = target;
        }
        Instr::Sync | Instr::Nop => {}
        Instr::Exit => {
            next_pc = pc;
        }
        // Traditional execution: xloop is exactly `blt idx, bound, body`.
        Instr::Xloop { idx, bound, body_offset, .. } => {
            if (state.reg(idx) as i32) < (state.reg(bound) as i32) {
                taken = true;
                next_pc = pc.wrapping_sub(body_offset as u32 * INSTR_BYTES);
            }
        }
        // Traditional execution: xi is a plain serial add.
        Instr::Xi { reg, kind } => {
            let inc = match kind {
                XiKind::Imm(imm) => imm as i32 as u32,
                XiKind::Reg(rt) => state.reg(rt),
            };
            let v = state.reg(reg).wrapping_add(inc);
            state.set_reg(reg, v);
            wrote = Some((reg, v));
        }
    }
    state.pc = next_pc;
    Ok(Effect { class, wrote, mem_addr, taken, next_pc })
}

/// [`apply`] against plain [`Memory`], which can never refuse an access —
/// the only remaining failure is an architectural [`ExecFault`].
///
/// # Errors
///
/// Returns the fault when the instruction is architecturally illegal
/// (misaligned access); no state has changed in that case.
#[inline]
pub fn apply_direct(
    instr: Instr,
    state: &mut ArchState,
    mem: &mut Memory,
) -> Result<Effect, ExecFault> {
    match apply(instr, state, mem) {
        Ok(effect) => Ok(effect),
        Err(ApplyError::Fault(fault)) => Err(fault),
        Err(ApplyError::Blocked(never)) => match never {},
    }
}

/// The immediate value an [`Instr::AluImm`] presents to the ALU: logical
/// ops zero-extend, everything else sign-extends.
#[inline]
pub fn alu_imm_value(op: AluOp, imm: i16) -> u32 {
    match op {
        AluOp::And | AluOp::Or | AluOp::Xor => imm as u16 as u32,
        _ => imm as i32 as u32,
    }
}

/// Computes a branch target: `pc + 4 × offset`.
#[inline]
pub fn branch_target(pc: u32, offset: i16) -> u32 {
    pc.wrapping_add((offset as i32 * INSTR_BYTES as i32) as u32)
}

/// Performs a load of the given kind against memory.
#[inline]
pub fn load(mem: &Memory, op: MemOp, addr: u32) -> u32 {
    match op {
        MemOp::Lw => mem.read_u32(addr),
        MemOp::Lh => mem.read_u16(addr) as i16 as i32 as u32,
        MemOp::Lhu => mem.read_u16(addr) as u32,
        MemOp::Lb => mem.read_u8(addr) as i8 as i32 as u32,
        MemOp::Lbu => mem.read_u8(addr) as u32,
        _ => unreachable!("load called with a store op"),
    }
}

/// Performs a store of the given kind against memory.
#[inline]
pub fn store(mem: &mut Memory, op: MemOp, addr: u32, value: u32) {
    match op {
        MemOp::Sw => mem.write_u32(addr, value),
        MemOp::Sh => mem.write_u16(addr, value as u16),
        MemOp::Sb => mem.write_u8(addr, value as u8),
        _ => unreachable!("store called with a load op"),
    }
}

/// Serial `xi` semantics: one increment applied per iteration (identical to
/// what [`apply`] does for `xi`, factored out for timing models that manage
/// their own register state).
#[inline]
pub fn xi_step(value: u32, step: i32) -> u32 {
    value.wrapping_add(step as u32)
}

/// Parallel (MIVT) `xi` semantics: the ISA permits hardware to compute a
/// mutual-induction value positionally — `live_in + inc × (ordinal + 1)` for
/// the iteration with the given zero-based ordinal — instead of serially.
#[inline]
pub fn xi_mivt(live_in: u32, inc: i32, ordinal: u64) -> u32 {
    live_in.wrapping_add((inc as i64 * (ordinal as i64 + 1)) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A port that refuses everything, for pinning the no-side-effects
    /// contract.
    struct Refusing;
    impl MemPort for Refusing {
        type Block = ();
        fn load(&mut self, _: MemOp, _: u32) -> Result<u32, ()> {
            Err(())
        }
        fn store(&mut self, _: MemOp, _: u32, _: u32) -> Result<(), ()> {
            Err(())
        }
        fn amo(&mut self, _: AmoOp, _: u32, _: u32) -> Result<u32, ()> {
            Err(())
        }
    }

    #[test]
    fn refused_memory_op_has_no_side_effects() {
        let r = Reg::new;
        let mut state = ArchState::new();
        state.set_reg(r(1), 0x100);
        state.set_reg(r(2), 7);
        state.pc = 12;
        let before = state.clone();
        for instr in [
            Instr::Mem { op: MemOp::Lw, data: r(2), base: r(1), offset: 0 },
            Instr::Mem { op: MemOp::Sw, data: r(2), base: r(1), offset: 4 },
            Instr::Amo { op: AmoOp::Add, rd: r(3), addr: r(1), src: r(2) },
        ] {
            assert_eq!(apply(instr, &mut state, &mut Refusing), Err(ApplyError::Blocked(())));
            assert_eq!(state, before, "refused {instr} must not change state");
        }
    }

    #[test]
    fn misaligned_access_faults_with_no_side_effects() {
        let r = Reg::new;
        let mut state = ArchState::new();
        state.set_reg(r(1), 0x102); // word-misaligned, halfword-aligned
        state.set_reg(r(2), 7);
        state.pc = 12;
        let before = state.clone();
        let mut mem = Memory::new();
        for (instr, fault) in [
            (
                Instr::Mem { op: MemOp::Lw, data: r(2), base: r(1), offset: 1 },
                ExecFault::Misaligned { addr: 0x103, align: 4, store: false },
            ),
            (
                Instr::Mem { op: MemOp::Sh, data: r(2), base: r(1), offset: 1 },
                ExecFault::Misaligned { addr: 0x103, align: 2, store: true },
            ),
            (
                Instr::Amo { op: AmoOp::Add, rd: r(3), addr: r(1), src: r(2) },
                ExecFault::Misaligned { addr: 0x102, align: 4, store: true },
            ),
        ] {
            assert_eq!(apply_direct(instr, &mut state, &mut mem), Err(fault));
            assert_eq!(state, before, "faulted {instr} must not change state");
        }
        // Byte accesses and aligned halfwords at the same base are fine.
        apply_direct(
            Instr::Mem { op: MemOp::Lbu, data: r(2), base: r(1), offset: 1 },
            &mut state,
            &mut mem,
        )
        .unwrap();
    }

    #[test]
    fn effect_reports_r0_writes_but_discards_them() {
        let mut state = ArchState::new();
        let mut mem = Memory::new();
        let instr = Instr::AluImm { op: AluOp::Addu, rd: Reg::ZERO, rs: Reg::ZERO, imm: 55 };
        let eff = apply_direct(instr, &mut state, &mut mem).unwrap();
        assert_eq!(eff.wrote, Some((Reg::ZERO, 55)));
        assert_eq!(state.reg(Reg::ZERO), 0);
    }

    #[test]
    fn exit_reports_class_and_holds_pc() {
        let mut state = ArchState::new();
        state.pc = 20;
        let mut mem = Memory::new();
        let eff = apply_direct(Instr::Exit, &mut state, &mut mem).unwrap();
        assert_eq!(eff.class, EffectClass::Exit);
        assert_eq!(state.pc, 20);
    }

    #[test]
    fn xi_formulas_agree_serially() {
        // Applying the serial step k times lands on the positional value
        // for ordinal k-1.
        let live_in = 100u32;
        let inc = -3i32;
        let mut v = live_in;
        for k in 0..8u64 {
            v = xi_step(v, inc);
            assert_eq!(v, xi_mivt(live_in, inc, k));
        }
    }

    #[test]
    fn classify_matches_apply_class() {
        let r = Reg::new;
        let mut mem = Memory::new();
        for instr in [
            Instr::Alu { op: AluOp::Addu, rd: r(1), rs: r(2), rt: r(3) },
            Instr::Nop,
            Instr::Llfu { op: LlfuOp::Mul, rd: r(1), rs: r(2), rt: r(3) },
            Instr::Mem { op: MemOp::Lbu, data: r(1), base: r(2), offset: 0 },
            Instr::Mem { op: MemOp::Sh, data: r(1), base: r(2), offset: 0 },
            Instr::Amo { op: AmoOp::Xchg, rd: r(1), addr: r(2), src: r(3) },
            Instr::Sync,
            Instr::Jump { link: false, target_word: 0 },
        ] {
            let mut state = ArchState::new();
            let eff = apply_direct(instr, &mut state, &mut mem).unwrap();
            assert_eq!(eff.class, classify(instr));
        }
    }
}
