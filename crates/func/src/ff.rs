//! The fast-forward functional engine: a pre-decoded threaded-code stepper
//! that executes a whole [`Program`] at memory speed.
//!
//! [`Interp`](crate::Interp) re-fetches and re-matches an [`Instr`] on every
//! step, going through [`semantics::apply`](crate::semantics::apply) with its
//! generic [`MemPort`](crate::MemPort) plumbing. That is the right shape for
//! the timing models (which need the [`Effect`](crate::Effect) record), but
//! it leaves an order of magnitude on the table for pure fast-forwarding,
//! where nobody consumes effects. [`FastForward`] decodes the program *once*
//! into a dense `Vec` of `Op`s with every immediate pre-extended, every
//! branch target pre-resolved to an instruction index, and registers held in
//! a flat `[u32; 32]`, then runs a tight fetch-dispatch loop over plain
//! [`Memory`].
//!
//! The engine is **bit-identical** to the interpreter by construction: each
//! `Op` is a specialization of the corresponding [`semantics`] arm
//! (`xloop` is a conditional backward branch, `xi` a plain serial add,
//! misaligned accesses fault *before* touching memory, `r0` stays zero), and
//! `tests/ff_oracle.rs` pins `Interp == FastForward` on the final
//! [`ArchState`] + memory image of every Table II kernel.
//!
//! The pc is tracked as an instruction index (`pc / 4`). Misaligned pcs are
//! outside the architectural contract — [`Program::fetch`] panics on them —
//! and the engine panics at the same point the interpreter would (the fetch
//! following a misaligned indirect jump).
//!
//! [`semantics`]: crate::semantics

use xloops_asm::Program;
use xloops_isa::{AluOp, AmoOp, BranchCond, Instr, LlfuOp, Reg, INSTR_BYTES, NUM_REGS};
use xloops_mem::Memory;

use crate::semantics::{alu_imm_value, ExecFault};
use crate::state::ArchState;
use crate::ExecError;

/// One pre-decoded instruction. Register numbers are raw indices, immediates
/// are pre-extended to their architectural `u32` form, and control-flow
/// targets are instruction indices (not byte addresses).
#[derive(Clone, Copy, Debug)]
enum Op {
    Alu { op: AluOp, rd: u8, rs: u8, rt: u8 },
    AluImm { op: AluOp, rd: u8, rs: u8, imm: u32 },
    Lui { rd: u8, imm: u32 },
    Llfu { op: LlfuOp, rd: u8, rs: u8, rt: u8 },
    Amo { op: AmoOp, rd: u8, addr: u8, src: u8 },
    Lw { data: u8, base: u8, offset: u32 },
    Lh { data: u8, base: u8, offset: u32 },
    Lhu { data: u8, base: u8, offset: u32 },
    Lb { data: u8, base: u8, offset: u32 },
    Lbu { data: u8, base: u8, offset: u32 },
    Sw { data: u8, base: u8, offset: u32 },
    Sh { data: u8, base: u8, offset: u32 },
    Sb { data: u8, base: u8, offset: u32 },
    Branch { cond: BranchCond, rs: u8, rt: u8, target: u32 },
    Jump { link: bool, target: u32 },
    JumpReg { link: bool, rd: u8, rs: u8 },
    Sync,
    Nop,
    Exit,
    Xloop { idx: u8, bound: u8, target: u32 },
    XiImm { reg: u8, inc: u32 },
    XiReg { reg: u8, rt: u8 },
}

/// What a [`FastForward::run`] call did. Both outcomes leave the
/// [`ArchState`] exactly where the interpreter would: after `exit` the pc
/// still points at the `exit` instruction; after an exhausted budget it
/// points at the next unexecuted instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FfRun {
    /// Dynamic instructions retired (the final `exit`, if any, included).
    pub retired: u64,
    /// Whether the program executed `exit`.
    pub exited: bool,
}

/// A program decoded once into threaded code. Construction is cheap
/// (one pass over the text); clone-free execution over any number of
/// (state, memory) pairs afterwards.
#[derive(Clone, Debug)]
pub struct FastForward {
    ops: Vec<Op>,
}

impl FastForward {
    /// Pre-decodes `program` (instruction `i` of the text becomes `ops[i]`).
    pub fn new(program: &Program) -> FastForward {
        let ops = program
            .instrs()
            .iter()
            .enumerate()
            .map(|(i, &instr)| decode(i as u32, instr))
            .collect();
        FastForward { ops }
    }

    /// Executes up to `max_steps` instructions starting from `state`,
    /// against architectural memory, mutating both in place.
    ///
    /// # Errors
    ///
    /// Exactly the interpreter's failure modes, with identical state at the
    /// point of failure: [`ExecError::InvalidPc`] when the pc leaves the
    /// text (pc set to the invalid address), or [`ExecError::Fault`] on a
    /// misaligned access (no state changed, pc at the faulting
    /// instruction). A spent budget is *not* an error here — fast-forward
    /// windows end routinely — so the run reports `exited: false` instead.
    pub fn run(
        &self,
        state: &mut ArchState,
        mem: &mut Memory,
        max_steps: u64,
    ) -> Result<FfRun, ExecError> {
        assert!(state.pc.is_multiple_of(INSTR_BYTES), "misaligned pc {:#x}", state.pc);
        let mut regs: [u32; NUM_REGS] = *state.regs();
        let mut idx = state.pc / INSTR_BYTES;
        let mut retired = 0u64;

        macro_rules! flush {
            () => {{
                *state.regs_mut() = regs;
                state.pc = idx.wrapping_mul(INSTR_BYTES);
            }};
        }
        // Writes honoring the r0 invariant without a branch: write, then
        // re-zero slot 0 (cheaper than a predictable-but-present test).
        macro_rules! set {
            ($rd:expr, $v:expr) => {{
                regs[$rd as usize] = $v;
                regs[0] = 0;
            }};
        }

        while retired < max_steps {
            let Some(op) = self.ops.get(idx as usize) else {
                flush!();
                return Err(ExecError::InvalidPc(state.pc));
            };
            match *op {
                Op::Alu { op, rd, rs, rt } => {
                    set!(rd, op.apply(regs[rs as usize], regs[rt as usize]));
                }
                Op::AluImm { op, rd, rs, imm } => {
                    set!(rd, op.apply(regs[rs as usize], imm));
                }
                Op::Lui { rd, imm } => set!(rd, imm),
                Op::Llfu { op, rd, rs, rt } => {
                    set!(rd, op.apply(regs[rs as usize], regs[rt as usize]));
                }
                Op::Amo { op, rd, addr, src } => {
                    let a = regs[addr as usize];
                    if a & 3 != 0 {
                        flush!();
                        return Err(ExecError::Fault {
                            pc: state.pc,
                            fault: ExecFault::Misaligned { addr: a, align: 4, store: true },
                        });
                    }
                    set!(rd, mem.amo(op, a, regs[src as usize]));
                }
                Op::Lw { data, base, offset } => {
                    let a = regs[base as usize].wrapping_add(offset);
                    if a & 3 != 0 {
                        flush!();
                        return Err(misaligned(state.pc, a, 4, false));
                    }
                    set!(data, mem.read_u32(a));
                }
                Op::Lh { data, base, offset } => {
                    let a = regs[base as usize].wrapping_add(offset);
                    if a & 1 != 0 {
                        flush!();
                        return Err(misaligned(state.pc, a, 2, false));
                    }
                    set!(data, mem.read_u16(a) as i16 as i32 as u32);
                }
                Op::Lhu { data, base, offset } => {
                    let a = regs[base as usize].wrapping_add(offset);
                    if a & 1 != 0 {
                        flush!();
                        return Err(misaligned(state.pc, a, 2, false));
                    }
                    set!(data, mem.read_u16(a) as u32);
                }
                Op::Lb { data, base, offset } => {
                    let a = regs[base as usize].wrapping_add(offset);
                    set!(data, mem.read_u8(a) as i8 as i32 as u32);
                }
                Op::Lbu { data, base, offset } => {
                    let a = regs[base as usize].wrapping_add(offset);
                    set!(data, mem.read_u8(a) as u32);
                }
                Op::Sw { data, base, offset } => {
                    let a = regs[base as usize].wrapping_add(offset);
                    if a & 3 != 0 {
                        flush!();
                        return Err(misaligned(state.pc, a, 4, true));
                    }
                    mem.write_u32(a, regs[data as usize]);
                }
                Op::Sh { data, base, offset } => {
                    let a = regs[base as usize].wrapping_add(offset);
                    if a & 1 != 0 {
                        flush!();
                        return Err(misaligned(state.pc, a, 2, true));
                    }
                    mem.write_u16(a, regs[data as usize] as u16);
                }
                Op::Sb { data, base, offset } => {
                    let a = regs[base as usize].wrapping_add(offset);
                    mem.write_u8(a, regs[data as usize] as u8);
                }
                Op::Branch { cond, rs, rt, target } => {
                    if cond.eval(regs[rs as usize], regs[rt as usize]) {
                        retired += 1;
                        idx = target;
                        continue;
                    }
                }
                Op::Jump { link, target } => {
                    if link {
                        set!(Reg::RA.index(), next_pc(idx));
                    }
                    retired += 1;
                    idx = target;
                    continue;
                }
                Op::JumpReg { link, rd, rs } => {
                    // Target read before the link write (`jalr r1, r1`).
                    let t = regs[rs as usize];
                    if link {
                        set!(rd, next_pc(idx));
                    }
                    retired += 1;
                    // A misaligned indirect target is a program bug; panic
                    // where the interpreter would (at the following fetch),
                    // with the interpreter's architectural state.
                    if !t.is_multiple_of(INSTR_BYTES) {
                        *state.regs_mut() = regs;
                        state.pc = t;
                        panic!("misaligned pc {t:#x}");
                    }
                    idx = t / INSTR_BYTES;
                    continue;
                }
                Op::Sync | Op::Nop => {}
                Op::Exit => {
                    retired += 1;
                    flush!();
                    return Ok(FfRun { retired, exited: true });
                }
                Op::Xloop { idx: ir, bound, target } => {
                    if (regs[ir as usize] as i32) < (regs[bound as usize] as i32) {
                        retired += 1;
                        idx = target;
                        continue;
                    }
                }
                Op::XiImm { reg, inc } => {
                    set!(reg, regs[reg as usize].wrapping_add(inc));
                }
                Op::XiReg { reg, rt } => {
                    set!(reg, regs[reg as usize].wrapping_add(regs[rt as usize]));
                }
            }
            retired += 1;
            idx = idx.wrapping_add(1);
        }
        flush!();
        Ok(FfRun { retired, exited: false })
    }
}

#[inline]
fn next_pc(idx: u32) -> u32 {
    idx.wrapping_add(1).wrapping_mul(INSTR_BYTES)
}

#[cold]
fn misaligned(pc: u32, addr: u32, align: u32, store: bool) -> ExecError {
    ExecError::Fault { pc, fault: ExecFault::Misaligned { addr, align, store } }
}

/// Decodes the instruction at index `i` into its threaded-code form,
/// pre-computing everything [`crate::semantics::apply`] would re-derive per
/// execution: extended immediates ([`alu_imm_value`]), byte offsets, and
/// branch/xloop/jump targets as instruction indices.
fn decode(i: u32, instr: Instr) -> Op {
    let r = |reg: Reg| reg.index() as u8;
    match instr {
        Instr::Alu { op, rd, rs, rt } => Op::Alu { op, rd: r(rd), rs: r(rs), rt: r(rt) },
        Instr::AluImm { op, rd, rs, imm } => {
            Op::AluImm { op, rd: r(rd), rs: r(rs), imm: alu_imm_value(op, imm) }
        }
        Instr::Lui { rd, imm } => Op::Lui { rd: r(rd), imm: (imm as u32) << 16 },
        Instr::Llfu { op, rd, rs, rt } => Op::Llfu { op, rd: r(rd), rs: r(rs), rt: r(rt) },
        Instr::Amo { op, rd, addr, src } => Op::Amo { op, rd: r(rd), addr: r(addr), src: r(src) },
        Instr::Mem { op, data, base, offset } => {
            let (data, base, offset) = (r(data), r(base), offset as i32 as u32);
            match op {
                xloops_isa::MemOp::Lw => Op::Lw { data, base, offset },
                xloops_isa::MemOp::Lh => Op::Lh { data, base, offset },
                xloops_isa::MemOp::Lhu => Op::Lhu { data, base, offset },
                xloops_isa::MemOp::Lb => Op::Lb { data, base, offset },
                xloops_isa::MemOp::Lbu => Op::Lbu { data, base, offset },
                xloops_isa::MemOp::Sw => Op::Sw { data, base, offset },
                xloops_isa::MemOp::Sh => Op::Sh { data, base, offset },
                xloops_isa::MemOp::Sb => Op::Sb { data, base, offset },
            }
        }
        Instr::Branch { cond, rs, rt, offset } => {
            Op::Branch { cond, rs: r(rs), rt: r(rt), target: i.wrapping_add(offset as i32 as u32) }
        }
        Instr::Jump { link, target_word } => Op::Jump { link, target: target_word },
        Instr::JumpReg { link, rd, rs } => Op::JumpReg { link, rd: r(rd), rs: r(rs) },
        Instr::Sync => Op::Sync,
        Instr::Nop => Op::Nop,
        Instr::Exit => Op::Exit,
        Instr::Xloop { idx, bound, body_offset, .. } => {
            Op::Xloop { idx: r(idx), bound: r(bound), target: i.wrapping_sub(body_offset as u32) }
        }
        Instr::Xi { reg, kind } => match kind {
            xloops_isa::XiKind::Imm(imm) => Op::XiImm { reg: r(reg), inc: imm as i32 as u32 },
            xloops_isa::XiKind::Reg(rt) => Op::XiReg { reg: r(reg), rt: r(rt) },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interp, Step};
    use xloops_asm::assemble;

    /// Runs `src` under both engines and asserts bit-identical final state.
    fn differential(src: &str) -> (ArchState, Memory) {
        let p = assemble(src).expect("assembles");

        let mut interp = Interp::new();
        let mut mem_i = Memory::new();
        let mut steps = 0u64;
        loop {
            match interp.step(&p, &mut mem_i) {
                Ok(Step::Exit) => break,
                Ok(Step::Continue) => {}
                Err(e) => panic!("interp failed: {e}"),
            }
            steps += 1;
            assert!(steps < 10_000_000, "interp did not exit");
        }

        let ff = FastForward::new(&p);
        let mut state = ArchState::new();
        let mut mem_f = Memory::new();
        let run = ff.run(&mut state, &mut mem_f, u64::MAX).expect("ff runs");
        assert!(run.exited);
        assert_eq!(run.retired, interp.mix().total(), "retired counts diverge");
        assert_eq!(&state, interp.state(), "ArchState diverges");
        assert_eq!(mem_i.first_difference(&mem_f), None, "memory diverges");
        (state, mem_f)
    }

    #[test]
    fn arithmetic_memory_and_control_match_interp() {
        differential(
            "
            li r1, -3
            li r2, 10
            addu r3, r1, r2
            mul r4, r2, r2
            sw r4, 0x100(r0)
            lw r5, 0x100(r0)
            sb r1, 0x108(r0)
            lb r6, 0x108(r0)
            lbu r7, 0x108(r0)
            sh r2, 0x10A(r0)
            lh r8, 0x10A(r0)
            lhu r9, 0x10A(r0)
            amo.add r10, (r0), r2
            sync
            exit",
        );
    }

    #[test]
    fn loops_branches_and_calls_match_interp() {
        differential(
            "
            li r1, 0
            li r2, 1
            li r3, 10
        top:
            addu r1, r1, r2
            addiu r2, r2, 1
            ble r2, r3, top
            jal fun
            sw r9, 0x40(r0)
            exit
        fun:
            li r9, 42
            jr ra",
        );
    }

    #[test]
    fn xloop_and_xi_match_interp() {
        differential(
            "
            li r2, 0
            li r3, 16
            li r6, 100
        body:
            sll r5, r2, 2
            sw r2, 0x400(r5)
            addiu.xi r6, r6, 10
            addiu r2, r2, 1
            xloop.uc body, r2, r3
            exit",
        );
    }

    #[test]
    fn r0_writes_are_discarded() {
        let (state, _) = differential("li r0, 55\naddiu r0, r0, 3\nxor r1, r0, r0\nexit");
        assert_eq!(state.reg(Reg::ZERO), 0);
        assert_eq!(state.reg(Reg::new(1)), 0);
    }

    #[test]
    fn budget_exhaustion_stops_at_instruction_boundary() {
        let p = assemble("li r1, 1\nli r2, 2\nli r3, 3\nexit").unwrap();
        let ff = FastForward::new(&p);
        let mut state = ArchState::new();
        let mut mem = Memory::new();
        let run = ff.run(&mut state, &mut mem, 2).unwrap();
        assert_eq!(run, FfRun { retired: 2, exited: false });
        assert_eq!(state.pc, 8);
        assert_eq!(state.reg(Reg::new(2)), 2);
        assert_eq!(state.reg(Reg::new(3)), 0);
        // Resuming finishes the program.
        let run = ff.run(&mut state, &mut mem, u64::MAX).unwrap();
        assert_eq!(run, FfRun { retired: 2, exited: true });
        assert_eq!(state.pc, 12, "exit leaves the pc in place");
    }

    #[test]
    fn invalid_pc_matches_interp() {
        let p = assemble("nop").unwrap(); // falls off the end
        let ff = FastForward::new(&p);
        let mut state = ArchState::new();
        let mut mem = Memory::new();
        assert_eq!(ff.run(&mut state, &mut mem, 100), Err(ExecError::InvalidPc(4)));
        assert_eq!(state.pc, 4);
    }

    #[test]
    fn misaligned_access_faults_without_side_effects() {
        let p = assemble("li r1, 0x102\nlw r2, 0(r1)\nexit").unwrap();
        let ff = FastForward::new(&p);
        let mut state = ArchState::new();
        let mut mem = Memory::new();
        let err = ff.run(&mut state, &mut mem, 100).unwrap_err();
        assert_eq!(
            err,
            ExecError::Fault {
                pc: 4,
                fault: ExecFault::Misaligned { addr: 0x102, align: 4, store: false },
            }
        );
        assert_eq!(state.pc, 4, "pc at the faulting instruction");
        assert_eq!(state.reg(Reg::new(2)), 0, "no partial writes");
    }

    #[test]
    #[should_panic(expected = "misaligned pc 0x6")]
    fn misaligned_indirect_jump_panics_like_interp_fetch() {
        // `Program::fetch` panics on a misaligned pc; the engine panics at
        // the same point (the fetch after the jump), same message.
        let p = assemble("li r1, 6\njr r1\nli r9, 1\nexit").unwrap();
        let ff = FastForward::new(&p);
        let mut state = ArchState::new();
        let mut mem = Memory::new();
        let _ = ff.run(&mut state, &mut mem, 100);
    }
}
