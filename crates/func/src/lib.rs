//! # xloops-func
//!
//! The shared architectural layer under every engine in the workspace, in
//! two pieces:
//!
//! * [`state::ArchState`] — the pure architectural state (regfile + pc);
//! * [`semantics`] — the single definition of what each instruction does:
//!   [`semantics::apply`] executes one instruction against an `ArchState`
//!   and a [`semantics::MemPort`], returning an [`semantics::Effect`] that
//!   timing models consume for their slot/port/queue accounting.
//!
//! On top of those sits [`Interp`], a functional (instruction-level,
//! untimed) interpreter: it executes XLOOPS binaries with *traditional*
//! semantics — `xloop` behaves as a conditional branch, `xi` as a plain
//! add — which the ISA defines to be a valid serial execution of every loop
//! pattern.
//!
//! The interpreter is the **golden model**: every cycle-level
//! microarchitecture model in `xloops-gpp` / `xloops-lpsu` must produce the
//! same architectural memory state, and the kernel test-suites compare all
//! of them against it (and against the pure-Rust reference implementations
//! in `xloops-kernels`).
//!
//! ```
//! use xloops_asm::assemble;
//! use xloops_func::Interp;
//! use xloops_mem::Memory;
//!
//! let p = assemble("
//!     li r1, 7
//!     li r2, 5
//!     addu r3, r1, r2
//!     sw r3, 0x100(r0)
//!     exit")?;
//! let mut mem = Memory::new();
//! let mut interp = Interp::new();
//! let stats = interp.run(&p, &mut mem, 1_000)?;
//! assert_eq!(mem.read_u32(0x100), 12);
//! assert_eq!(stats.instret, 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use xloops_asm::Program;
use xloops_isa::{Instr, Reg, INSTR_BYTES};
use xloops_mem::Memory;

pub mod ff;
pub mod semantics;
pub mod state;

pub use ff::{FastForward, FfRun};
pub use semantics::{
    alu_imm_value, apply, apply_direct, branch_target, classify, load, store, xi_mivt, xi_step,
    ApplyError, Effect, EffectClass, ExecFault, MemPort,
};
pub use state::ArchState;

/// Dynamic instruction mix, used for Table II dynamic-instruction counts
/// and as event counts by the energy model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InsnMix {
    /// Simple integer ALU operations (including `lui`, `nop`, `exit`).
    pub alu: u64,
    /// Long-latency operations (integer mul/div, FP).
    pub llfu: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Atomic memory operations.
    pub amos: u64,
    /// Conditional branches (excluding `xloop`).
    pub branches: u64,
    /// Taken conditional branches (excluding `xloop`).
    pub branches_taken: u64,
    /// Unconditional jumps (`j`, `jal`, `jr`, `jalr`).
    pub jumps: u64,
    /// `xloop` instructions executed (as branches, under traditional
    /// semantics).
    pub xloops: u64,
    /// Cross-iteration (`xi`) instructions.
    pub xis: u64,
    /// Memory fences.
    pub syncs: u64,
}

impl InsnMix {
    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.alu
            + self.llfu
            + self.loads
            + self.stores
            + self.amos
            + self.branches
            + self.jumps
            + self.xloops
            + self.xis
            + self.syncs
    }

    /// Accounts one executed instruction by its effect class.
    #[inline]
    fn count(&mut self, class: EffectClass, taken: bool) {
        match class {
            // `exit` is counted like a simple op.
            EffectClass::Alu | EffectClass::Exit => self.alu += 1,
            EffectClass::Llfu(_) => self.llfu += 1,
            EffectClass::Load(_) => self.loads += 1,
            EffectClass::Store(_) => self.stores += 1,
            EffectClass::Amo => self.amos += 1,
            EffectClass::Branch => {
                self.branches += 1;
                if taken {
                    self.branches_taken += 1;
                }
            }
            EffectClass::Jump | EffectClass::JumpReg => self.jumps += 1,
            EffectClass::Sync => self.syncs += 1,
            EffectClass::Xloop => self.xloops += 1,
            EffectClass::Xi => self.xis += 1,
        }
    }
}

/// Result of running a program to completion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Dynamic instructions retired (including the final `exit`).
    pub instret: u64,
    /// Dynamic instruction mix.
    pub mix: InsnMix,
}

/// Errors the interpreter can signal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The pc left the program text.
    InvalidPc(u32),
    /// The step budget was exhausted before `exit` (likely livelock).
    StepLimit(u64),
    /// An instruction faulted architecturally (misaligned access).
    Fault {
        /// pc of the faulting instruction.
        pc: u32,
        /// The fault itself.
        fault: semantics::ExecFault,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidPc(pc) => write!(f, "pc {pc:#x} is outside the program"),
            ExecError::StepLimit(n) => write!(f, "program did not exit within {n} steps"),
            ExecError::Fault { pc, fault } => write!(f, "fault at pc {pc:#x}: {fault}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// What a single [`Interp::step`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Execution continues at the new pc.
    Continue,
    /// The program executed `exit`.
    Exit,
}

/// The functional interpreter: an [`ArchState`] stepped by
/// [`semantics::apply`], plus dynamic-mix accounting. It holds no timing
/// state whatsoever.
#[derive(Clone, Debug, Default)]
pub struct Interp {
    state: ArchState,
    mix: InsnMix,
}

impl Interp {
    /// Creates an interpreter with pc 0 and all registers zero.
    pub fn new() -> Interp {
        Interp { state: ArchState::new(), mix: InsnMix::default() }
    }

    /// Current program counter (byte address).
    #[inline]
    pub fn pc(&self) -> u32 {
        self.state.pc
    }

    /// Redirects the program counter.
    #[inline]
    pub fn set_pc(&mut self, pc: u32) {
        self.state.pc = pc;
    }

    /// Reads a register (reads of `r0` return 0).
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.state.reg(r)
    }

    /// Writes a register (writes to `r0` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.state.set_reg(r, value);
    }

    /// The architectural state (for snapshotting).
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Replaces the architectural state (for snapshot restore).
    pub fn set_state(&mut self, state: ArchState) {
        self.state = state;
    }

    /// The dynamic instruction mix accumulated so far.
    pub fn mix(&self) -> InsnMix {
        self.mix
    }

    /// Executes a single instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidPc`] if the pc is outside the program,
    /// or [`ExecError::Fault`] if the instruction faults.
    pub fn step(&mut self, program: &Program, mem: &mut Memory) -> Result<Step, ExecError> {
        let pc = self.state.pc;
        let instr = program.fetch(pc).ok_or(ExecError::InvalidPc(pc))?;
        let effect = self.exec(instr, mem)?;
        Ok(if effect.class == EffectClass::Exit { Step::Exit } else { Step::Continue })
    }

    /// Executes `instr` as the instruction at the current pc and reports
    /// its [`Effect`]. Callers that already fetched (to inspect the
    /// instruction before executing, like the timing models) use this to
    /// avoid a second fetch.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Fault`] if the instruction faults (no state
    /// has changed in that case).
    #[inline]
    pub fn exec(&mut self, instr: Instr, mem: &mut Memory) -> Result<Effect, ExecError> {
        let effect = semantics::apply_direct(instr, &mut self.state, mem)
            .map_err(|fault| ExecError::Fault { pc: self.state.pc, fault })?;
        self.mix.count(effect.class, effect.taken);
        Ok(effect)
    }

    /// Runs until `exit` or until `max_steps` instructions have retired.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StepLimit`] if the program does not exit in
    /// time, or [`ExecError::InvalidPc`] if control flow escapes the text.
    pub fn run(
        &mut self,
        program: &Program,
        mem: &mut Memory,
        max_steps: u64,
    ) -> Result<RunStats, ExecError> {
        let start_total = self.mix.total();
        for _ in 0..max_steps {
            if self.step(program, mem)? == Step::Exit {
                return Ok(RunStats { instret: self.mix.total() - start_total, mix: self.mix });
            }
        }
        Err(ExecError::StepLimit(max_steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xloops_asm::{assemble, lower_gp};

    fn run_src(src: &str) -> (Interp, Memory, RunStats) {
        let p = assemble(src).expect("assembles");
        let mut mem = Memory::new();
        let mut interp = Interp::new();
        let stats = interp.run(&p, &mut mem, 1_000_000).expect("runs");
        (interp, mem, stats)
    }

    #[test]
    fn arithmetic_and_memory() {
        let (interp, mem, _) = run_src(
            "
            li r1, -3
            li r2, 10
            addu r3, r1, r2
            mul r4, r2, r2
            sw r4, 0(r0)
            lw r5, 0(r0)
            sb r1, 8(r0)
            lb r6, 8(r0)
            lbu r7, 8(r0)
            exit",
        );
        assert_eq!(interp.reg(Reg::new(3)), 7);
        assert_eq!(interp.reg(Reg::new(5)), 100);
        assert_eq!(mem.read_u32(0), 100);
        assert_eq!(interp.reg(Reg::new(6)), -3i32 as u32);
        assert_eq!(interp.reg(Reg::new(7)), 0xFD);
    }

    #[test]
    fn loop_sums_integers() {
        // sum 1..=10 with a plain branch loop
        let (interp, _, stats) = run_src(
            "
            li r1, 0    # sum
            li r2, 1    # i
            li r3, 10   # n
        top:
            addu r1, r1, r2
            addiu r2, r2, 1
            ble r2, r3, top
            exit",
        );
        assert_eq!(interp.reg(Reg::new(1)), 55);
        assert!(stats.mix.branches_taken == 9);
    }

    #[test]
    fn xloop_serial_semantics_match_lowered_gp() {
        let src = "
            li r2, 0
            li r3, 16
            li r4, 0x400
        body:
            sll r5, r2, 2
            addu r5, r4, r5
            sw r2, 0(r5)
            addiu r2, r2, 1
            xloop.uc body, r2, r3
            exit";
        let p = assemble(src).unwrap();
        let gp = lower_gp(&p);

        let mut mem_x = Memory::new();
        let mut cpu_x = Interp::new();
        cpu_x.run(&p, &mut mem_x, 100_000).unwrap();

        let mut mem_g = Memory::new();
        let mut cpu_g = Interp::new();
        cpu_g.run(&gp, &mut mem_g, 100_000).unwrap();

        for i in 0..16u32 {
            assert_eq!(mem_x.read_u32(0x400 + 4 * i), i);
            assert_eq!(mem_g.read_u32(0x400 + 4 * i), i);
        }
        // Dynamic instruction counts are identical under the 1:1 lowering.
        assert_eq!(cpu_x.mix().total(), cpu_g.mix().total());
        assert_eq!(cpu_x.mix().xloops, 16);
        assert_eq!(cpu_g.mix().xloops, 0);
    }

    #[test]
    fn xi_traditional_is_plain_add() {
        let (interp, _, _) = run_src(
            "
            li r2, 0
            li r3, 4
            li r6, 100
        body:
            addiu.xi r6, r6, 10
            addiu r2, r2, 1
            xloop.uc body, r2, r3
            exit",
        );
        assert_eq!(interp.reg(Reg::new(6)), 140);
    }

    #[test]
    fn amo_and_fence() {
        let (interp, mem, stats) = run_src(
            "
            li r1, 0x200
            li r2, 5
            sw r2, 0(r1)
            amo.add r3, (r1), r2
            sync
            lw r4, 0(r1)
            exit",
        );
        assert_eq!(interp.reg(Reg::new(3)), 5, "amo returns old value");
        assert_eq!(interp.reg(Reg::new(4)), 10);
        assert_eq!(mem.read_u32(0x200), 10);
        assert_eq!(stats.mix.amos, 1);
        assert_eq!(stats.mix.syncs, 1);
    }

    #[test]
    fn jal_jr_call_return() {
        let (interp, _, _) = run_src(
            "
            jal fun
            sw r9, 0(r0)
            exit
        fun:
            li r9, 42
            jr ra",
        );
        assert_eq!(interp.reg(Reg::new(9)), 42);
    }

    #[test]
    fn float_path() {
        let (interp, _, _) = run_src(
            "
            li r1, 3
            li r2, 4
            cvt.s.w r3, r1, r0
            cvt.s.w r4, r2, r0
            fmul.s r5, r3, r4
            cvt.w.s r6, r5, r0
            exit",
        );
        assert_eq!(interp.reg(Reg::new(6)), 12);
    }

    #[test]
    fn step_limit_detected() {
        let p = assemble("spin: b spin").unwrap();
        let mut mem = Memory::new();
        let mut interp = Interp::new();
        assert_eq!(interp.run(&p, &mut mem, 100), Err(ExecError::StepLimit(100)));
    }

    #[test]
    fn invalid_pc_detected() {
        let p = assemble("nop").unwrap(); // falls off the end
        let mut mem = Memory::new();
        let mut interp = Interp::new();
        assert_eq!(interp.run(&p, &mut mem, 100), Err(ExecError::InvalidPc(4)));
    }

    #[test]
    fn r0_is_immutable() {
        let (interp, _, _) = run_src("li r0, 55\naddiu r0, r0, 3\nexit");
        assert_eq!(interp.reg(Reg::ZERO), 0);
    }
}

/// One executed instruction with its architectural effects — the unit of
/// the [`trace_step`] debugging facility.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// pc the instruction executed at.
    pub pc: u32,
    /// The instruction itself.
    pub instr: Instr,
    /// Register written, with its new value (`None` for stores/branches).
    pub wrote: Option<(Reg, u32)>,
    /// Memory address touched and whether it was written.
    pub mem: Option<(u32, bool)>,
    /// Whether a control-flow instruction redirected the pc.
    pub taken: bool,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#06x}: {:<28}", self.pc, self.instr.to_string())?;
        if let Some((r, v)) = self.wrote {
            write!(f, " {r} <- {v:#x}")?;
        }
        if let Some((addr, is_write)) = self.mem {
            write!(f, " [{}{addr:#x}]", if is_write { "W " } else { "R " })?;
        }
        if self.taken {
            write!(f, " taken")?;
        }
        Ok(())
    }
}

/// Executes one instruction like [`Interp::step`], additionally reporting
/// what it did — for debugging kernels and inspecting execution.
///
/// # Errors
///
/// Same conditions as [`Interp::step`].
pub fn trace_step(
    interp: &mut Interp,
    program: &Program,
    mem: &mut Memory,
) -> Result<(Step, TraceEntry), ExecError> {
    let pc = interp.pc();
    let instr = program.fetch(pc).ok_or(ExecError::InvalidPc(pc))?;
    let effect = interp.exec(instr, mem)?;
    let step = if effect.class == EffectClass::Exit { Step::Exit } else { Step::Continue };
    let wrote = effect.wrote.filter(|(r, _)| !r.is_zero());
    let mem_effect = effect
        .mem_addr
        .map(|addr| (addr, matches!(effect.class, EffectClass::Store(_) | EffectClass::Amo)));
    let taken = instr.is_control() && effect.next_pc != pc.wrapping_add(INSTR_BYTES);
    Ok((step, TraceEntry { pc, instr, wrote, mem: mem_effect, taken }))
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use xloops_asm::assemble;

    #[test]
    fn trace_reports_writes_memory_and_control() {
        let p = assemble(
            "
            li r1, 5
            sw r1, 0x40(r0)
            lw r2, 0x40(r0)
            beqz r0, skip
            nop
        skip:
            exit",
        )
        .unwrap();
        let mut mem = Memory::new();
        let mut cpu = Interp::new();

        let (_, t) = trace_step(&mut cpu, &p, &mut mem).unwrap();
        assert_eq!(t.wrote, Some((Reg::new(1), 5)));
        assert_eq!(t.mem, None);

        let (_, t) = trace_step(&mut cpu, &p, &mut mem).unwrap();
        assert_eq!(t.mem, Some((0x40, true)));
        assert_eq!(t.wrote, None);

        let (_, t) = trace_step(&mut cpu, &p, &mut mem).unwrap();
        assert_eq!(t.mem, Some((0x40, false)));
        assert_eq!(t.wrote, Some((Reg::new(2), 5)));

        let (_, t) = trace_step(&mut cpu, &p, &mut mem).unwrap();
        assert!(t.taken, "beqz r0 is always taken");
        assert!(t.to_string().contains("taken"));

        let (step, t) = trace_step(&mut cpu, &p, &mut mem).unwrap();
        assert_eq!(step, Step::Exit);
        assert!(t.to_string().contains("exit"));
    }
}
