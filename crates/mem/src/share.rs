//! Cycle-granularity models of shared structural resources.
//!
//! The LPSU's lanes and the GPP dynamically arbitrate for the data-memory
//! port and the long-latency functional unit (Section II-D). These helpers
//! model that arbitration for cycle-stepped simulators: callers attempt to
//! acquire the resource for the current cycle and stall (retry next cycle)
//! when refused. Fairness across requesters is the *caller's* job — the
//! LPSU polls lanes in rotating order — which keeps the resource model
//! deterministic.

/// A pipelined shared port that can accept a fixed number of new requests
/// per cycle (e.g. the shared data-memory port: one request per cycle, two
/// in the paper's `+r` design point).
///
/// ```
/// use xloops_mem::SharedPort;
/// let mut port = SharedPort::new(1);
/// assert!(port.try_issue(10));
/// assert!(!port.try_issue(10), "second request in cycle 10 is refused");
/// assert!(port.try_issue(11));
/// ```
#[derive(Clone, Debug)]
pub struct SharedPort {
    per_cycle: u32,
    cycle: u64,
    used: u32,
    issued_total: u64,
    refused_total: u64,
}

impl SharedPort {
    /// Creates a port that accepts `per_cycle` requests each cycle.
    ///
    /// # Panics
    ///
    /// Panics if `per_cycle` is zero.
    pub fn new(per_cycle: u32) -> SharedPort {
        assert!(per_cycle > 0, "port must accept at least one request per cycle");
        SharedPort { per_cycle, cycle: 0, used: 0, issued_total: 0, refused_total: 0 }
    }

    fn roll(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.cycle, "time went backwards");
        if cycle != self.cycle {
            self.cycle = cycle;
            self.used = 0;
        }
    }

    /// Whether a [`try_issue`](SharedPort::try_issue) in `cycle` would be
    /// refused. A cheap probe for callers that can skip work when the
    /// port's bandwidth is already spent; unlike `try_issue` it does not
    /// count a refusal.
    #[inline]
    pub fn is_exhausted(&self, cycle: u64) -> bool {
        self.cycle == cycle && self.used >= self.per_cycle
    }

    /// Attempts to issue a request in `cycle`. Returns `false` if the
    /// port's per-cycle bandwidth is exhausted.
    #[inline]
    pub fn try_issue(&mut self, cycle: u64) -> bool {
        self.roll(cycle);
        if self.used < self.per_cycle {
            self.used += 1;
            self.issued_total += 1;
            true
        } else {
            self.refused_total += 1;
            false
        }
    }

    /// Total requests granted.
    pub fn issued(&self) -> u64 {
        self.issued_total
    }

    /// Total requests refused (a proxy for port-contention stalls).
    pub fn refused(&self) -> u64 {
        self.refused_total
    }
}

/// An *unpipelined* shared functional unit with per-operation occupancy
/// (the LLFU: integer mul/div and FP). A request occupies one of the
/// `units` for `latency` cycles; further requests in that window are
/// refused.
///
/// ```
/// use xloops_mem::SharedUnit;
/// let mut llfu = SharedUnit::new(1);
/// assert!(llfu.try_start(100, 3)); // busy during 100, 101, 102
/// assert!(!llfu.try_start(102, 1));
/// assert!(llfu.try_start(103, 1));
/// ```
#[derive(Clone, Debug)]
pub struct SharedUnit {
    busy_until: Vec<u64>, // first cycle each unit is free again
    started_total: u64,
    refused_total: u64,
}

impl SharedUnit {
    /// Creates a bank of `units` identical unpipelined units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    pub fn new(units: u32) -> SharedUnit {
        assert!(units > 0, "need at least one unit");
        SharedUnit { busy_until: vec![0; units as usize], started_total: 0, refused_total: 0 }
    }

    /// Attempts to start an operation of `latency` cycles in `cycle`.
    #[inline]
    pub fn try_start(&mut self, cycle: u64, latency: u32) -> bool {
        match self.busy_until.iter_mut().find(|b| **b <= cycle) {
            Some(slot) => {
                *slot = cycle + latency as u64;
                self.started_total += 1;
                true
            }
            None => {
                self.refused_total += 1;
                false
            }
        }
    }

    /// The earliest cycle strictly after `cycle` at which a currently
    /// occupied unit frees up, or `None` if no unit is busy past `cycle`.
    /// Event-driven schedulers use this as a wakeup time after a refusal.
    pub fn next_free_after(&self, cycle: u64) -> Option<u64> {
        self.busy_until.iter().copied().filter(|&b| b > cycle).min()
    }

    /// Total operations started.
    pub fn started(&self) -> u64 {
        self.started_total
    }

    /// Total requests refused (a proxy for LLFU-contention stalls).
    pub fn refused(&self) -> u64 {
        self.refused_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_bandwidth_per_cycle() {
        let mut p = SharedPort::new(2);
        assert!(p.try_issue(0));
        assert!(p.try_issue(0));
        assert!(!p.try_issue(0));
        assert!(p.try_issue(1));
        assert_eq!(p.issued(), 3);
        assert_eq!(p.refused(), 1);
    }

    #[test]
    fn unit_occupancy() {
        let mut u = SharedUnit::new(1);
        assert!(u.try_start(0, 12)); // div occupies 0..12
        for c in 1..12 {
            assert!(!u.try_start(c, 1), "cycle {c} should be busy");
        }
        assert!(u.try_start(12, 1));
        assert_eq!(u.started(), 2);
        assert_eq!(u.refused(), 11);
    }

    #[test]
    fn two_units_overlap() {
        let mut u = SharedUnit::new(2);
        assert!(u.try_start(0, 4));
        assert!(u.try_start(0, 4));
        assert!(!u.try_start(1, 1));
        assert!(u.try_start(4, 1));
    }

    #[test]
    fn next_free_after_reports_earliest_release() {
        let mut u = SharedUnit::new(2);
        assert_eq!(u.next_free_after(0), None);
        assert!(u.try_start(0, 12));
        assert!(u.try_start(0, 4));
        assert_eq!(u.next_free_after(0), Some(4));
        assert_eq!(u.next_free_after(4), Some(12));
        assert_eq!(u.next_free_after(12), None);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_port_panics() {
        SharedPort::new(0);
    }
}
