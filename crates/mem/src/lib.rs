//! # xloops-mem
//!
//! The memory subsystem shared by every XLOOPS microarchitecture model:
//!
//! * [`Memory`] — a sparse, paged, byte-addressable 32-bit memory holding
//!   the architectural state, with little-endian accessors and atomic
//!   memory operations.
//! * [`Cache`] — a timing-only set-associative cache model (tags + LRU, no
//!   data: data always lives in [`Memory`], so functional behaviour can
//!   never diverge from timing behaviour).
//! * [`SharedPort`] and [`SharedUnit`] — cycle-granularity models of the
//!   structural resources the GPP and the LPSU lanes arbitrate for: the
//!   data-memory port(s) and the long-latency functional unit(s)
//!   (Section II-D of the paper).
//!
//! The evaluation datasets are tailored to fit in the L1 (as in the paper's
//! VLSI study), so the default cache configuration is 16 KB, 4-way, 64-byte
//! lines with a 1-cycle hit and 20-cycle miss.

mod cache;
pub mod hash;
mod memory;
mod share;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use memory::Memory;
pub use share::{SharedPort, SharedUnit};
