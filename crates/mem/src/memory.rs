use crate::hash::FxHashMap;
use xloops_isa::AmoOp;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Pages below this number (the first 1 MiB of the address space, where all
/// of the evaluation's code and datasets live) are reached through a
/// direct-indexed table — one bounds check and one pointer load per access
/// instead of a hash lookup. Higher pages fall back to a hash map so the
/// full 32-bit space stays addressable.
const LOW_PAGES: usize = 256;

/// A sparse, paged, little-endian, byte-addressable 32-bit memory.
///
/// Pages are allocated lazily on first touch; unwritten memory reads as
/// zero. Halfword and word accesses must be naturally aligned (the ISA has
/// no misaligned accesses, and the assembler cannot express them for code).
///
/// ```
/// use xloops_mem::Memory;
/// let mut m = Memory::new();
/// m.write_u32(0x1000, 0xDEAD_BEEF);
/// assert_eq!(m.read_u32(0x1000), 0xDEAD_BEEF);
/// assert_eq!(m.read_u8(0x1000), 0xEF); // little-endian
/// assert_eq!(m.read_u32(0x2000), 0);   // untouched memory is zero
/// ```
#[derive(Clone, Debug, Default)]
pub struct Memory {
    low: Vec<Option<Box<[u8; PAGE_SIZE]>>>,
    high: FxHashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    #[inline]
    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        let pn = (addr >> PAGE_BITS) as usize;
        if pn < LOW_PAGES {
            match self.low.get(pn) {
                Some(Some(p)) => Some(p),
                _ => None,
            }
        } else {
            self.high.get(&(pn as u32)).map(|b| &**b)
        }
    }

    #[inline]
    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        let pn = (addr >> PAGE_BITS) as usize;
        if pn < LOW_PAGES {
            if self.low.len() <= pn {
                self.low.resize_with(LOW_PAGES, || None);
            }
            self.low[pn].get_or_insert_with(|| Box::new([0; PAGE_SIZE]))
        } else {
            self.high.entry(pn as u32).or_insert_with(|| Box::new([0; PAGE_SIZE]))
        }
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a halfword.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 2-byte aligned.
    #[inline]
    pub fn read_u16(&self, addr: u32) -> u16 {
        assert!(addr.is_multiple_of(2), "misaligned halfword read at {addr:#x}");
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr + 1)])
    }

    /// Writes a halfword.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 2-byte aligned.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        assert!(addr.is_multiple_of(2), "misaligned halfword write at {addr:#x}");
        let [a, b] = value.to_le_bytes();
        self.write_u8(addr, a);
        self.write_u8(addr + 1, b);
    }

    /// Reads a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        assert!(addr.is_multiple_of(4), "misaligned word read at {addr:#x}");
        // Words never straddle a page, so take the fast path within one page.
        match self.page(addr) {
            Some(p) => {
                let i = (addr as usize) & (PAGE_SIZE - 1);
                u32::from_le_bytes([p[i], p[i + 1], p[i + 2], p[i + 3]])
            }
            None => 0,
        }
    }

    /// Writes a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        assert!(addr.is_multiple_of(4), "misaligned word write at {addr:#x}");
        let p = self.page_mut(addr);
        let i = (addr as usize) & (PAGE_SIZE - 1);
        p[i..i + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Performs an atomic memory operation on the word at `addr`, returning
    /// the *old* value.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn amo(&mut self, op: AmoOp, addr: u32, operand: u32) -> u32 {
        let old = self.read_u32(addr);
        self.write_u32(addr, op.combine(old, operand));
        old
    }

    /// Copies a slice of words into memory starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn write_words(&mut self, addr: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * i as u32, w);
        }
    }

    /// Reads `n` consecutive words starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn read_words(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u32)).collect()
    }

    /// Number of pages that have been touched (for memory-footprint stats).
    pub fn touched_pages(&self) -> usize {
        self.low.iter().filter(|p| p.is_some()).count() + self.high.len()
    }

    /// Address of the first byte at which the two memories differ, or
    /// `None` when their full 32-bit contents are identical. A page absent
    /// on one side compares as zeros, so sparseness differences alone are
    /// not differences. Used by the supervisor's differential checks.
    pub fn first_difference(&self, other: &Memory) -> Option<u32> {
        const ZEROS: [u8; PAGE_SIZE] = [0; PAGE_SIZE];
        let mut pages: Vec<u32> = Vec::new();
        for (pn, p) in self.low.iter().enumerate() {
            if p.is_some() {
                pages.push(pn as u32);
            }
        }
        for (pn, p) in other.low.iter().enumerate() {
            if p.is_some() && self.low.get(pn).is_none_or(|q| q.is_none()) {
                pages.push(pn as u32);
            }
        }
        pages.extend(self.high.keys().copied());
        pages.extend(other.high.keys().copied().filter(|pn| !self.high.contains_key(pn)));
        pages.sort_unstable();
        for pn in pages {
            let base = pn << PAGE_BITS;
            let a = self.page(base).map_or(&ZEROS, |p| p);
            let b = other.page(base).map_or(&ZEROS, |p| p);
            if let Some(i) = (0..PAGE_SIZE).find(|&i| a[i] != b[i]) {
                return Some(base + i as u32);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_and_round_trip() {
        let mut m = Memory::new();
        assert_eq!(m.read_u32(0), 0);
        assert_eq!(m.read_u8(12345), 0);
        m.write_u32(0x1000, 0x0102_0304);
        assert_eq!(m.read_u32(0x1000), 0x0102_0304);
        assert_eq!(m.read_u16(0x1000), 0x0304);
        assert_eq!(m.read_u16(0x1002), 0x0102);
        assert_eq!(m.read_u8(0x1003), 0x01);
    }

    #[test]
    fn page_boundary_bytes() {
        let mut m = Memory::new();
        m.write_u8(0x0FFF, 0xAA);
        m.write_u8(0x1000, 0xBB);
        assert_eq!(m.read_u8(0x0FFF), 0xAA);
        assert_eq!(m.read_u8(0x1000), 0xBB);
        assert_eq!(m.touched_pages(), 2);
    }

    #[test]
    fn amo_returns_old_value() {
        let mut m = Memory::new();
        m.write_u32(0x40, 10);
        assert_eq!(m.amo(AmoOp::Add, 0x40, 5), 10);
        assert_eq!(m.read_u32(0x40), 15);
        assert_eq!(m.amo(AmoOp::Xchg, 0x40, 99), 15);
        assert_eq!(m.read_u32(0x40), 99);
        assert_eq!(m.amo(AmoOp::Min, 0x40, -1i32 as u32), 99);
        assert_eq!(m.read_u32(0x40), -1i32 as u32);
    }

    #[test]
    fn bulk_words() {
        let mut m = Memory::new();
        m.write_words(0x100, &[1, 2, 3, 4]);
        assert_eq!(m.read_words(0x100, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn high_pages_beyond_the_direct_index() {
        let mut m = Memory::new();
        let low = 0x0000_2000u32; // direct-indexed page
        let high = 0xF000_0000u32; // hash-map fallback page
        m.write_u32(low, 0x1111_2222);
        m.write_u32(high, 0x3333_4444);
        assert_eq!(m.read_u32(low), 0x1111_2222);
        assert_eq!(m.read_u32(high), 0x3333_4444);
        assert_eq!(m.read_u32(high + PAGE_SIZE as u32), 0); // untouched high page
        assert_eq!(m.touched_pages(), 2);
        let copy = m.clone();
        assert_eq!(copy.read_u32(high), 0x3333_4444);
    }

    #[test]
    fn first_difference_ignores_sparseness() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        assert_eq!(a.first_difference(&b), None);
        a.write_u32(0x1000, 0); // touched page, still all zeros
        assert_eq!(a.first_difference(&b), None, "zero page equals absent page");
        assert_eq!(b.first_difference(&a), None);
        b.write_u8(0x1002, 9);
        assert_eq!(a.first_difference(&b), Some(0x1002));
        assert_eq!(b.first_difference(&a), Some(0x1002));
        a.write_u8(0x1002, 9);
        let mut c = a.clone();
        c.write_u8(0xF000_0007, 1); // high (hashed) page on one side only
        assert_eq!(a.first_difference(&c), Some(0xF000_0007));
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_word_panics() {
        Memory::new().read_u32(2);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_half_panics() {
        Memory::new().read_u16(1);
    }
}
