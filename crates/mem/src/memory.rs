use std::collections::HashMap;

use xloops_isa::AmoOp;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// A sparse, paged, little-endian, byte-addressable 32-bit memory.
///
/// Pages are allocated lazily on first touch; unwritten memory reads as
/// zero. Halfword and word accesses must be naturally aligned (the ISA has
/// no misaligned accesses, and the assembler cannot express them for code).
///
/// ```
/// use xloops_mem::Memory;
/// let mut m = Memory::new();
/// m.write_u32(0x1000, 0xDEAD_BEEF);
/// assert_eq!(m.read_u32(0x1000), 0xDEAD_BEEF);
/// assert_eq!(m.read_u8(0x1000), 0xEF); // little-endian
/// assert_eq!(m.read_u32(0x2000), 0);   // untouched memory is zero
/// ```
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_BITS)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr >> PAGE_BITS).or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a halfword.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 2-byte aligned.
    #[inline]
    pub fn read_u16(&self, addr: u32) -> u16 {
        assert!(addr.is_multiple_of(2), "misaligned halfword read at {addr:#x}");
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr + 1)])
    }

    /// Writes a halfword.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 2-byte aligned.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        assert!(addr.is_multiple_of(2), "misaligned halfword write at {addr:#x}");
        let [a, b] = value.to_le_bytes();
        self.write_u8(addr, a);
        self.write_u8(addr + 1, b);
    }

    /// Reads a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        assert!(addr.is_multiple_of(4), "misaligned word read at {addr:#x}");
        // Words never straddle a page, so take the fast path within one page.
        match self.page(addr) {
            Some(p) => {
                let i = (addr as usize) & (PAGE_SIZE - 1);
                u32::from_le_bytes([p[i], p[i + 1], p[i + 2], p[i + 3]])
            }
            None => 0,
        }
    }

    /// Writes a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        assert!(addr.is_multiple_of(4), "misaligned word write at {addr:#x}");
        let p = self.page_mut(addr);
        let i = (addr as usize) & (PAGE_SIZE - 1);
        p[i..i + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Performs an atomic memory operation on the word at `addr`, returning
    /// the *old* value.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn amo(&mut self, op: AmoOp, addr: u32, operand: u32) -> u32 {
        let old = self.read_u32(addr);
        self.write_u32(addr, op.combine(old, operand));
        old
    }

    /// Copies a slice of words into memory starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn write_words(&mut self, addr: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * i as u32, w);
        }
    }

    /// Reads `n` consecutive words starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn read_words(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u32)).collect()
    }

    /// Number of pages that have been touched (for memory-footprint stats).
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_and_round_trip() {
        let mut m = Memory::new();
        assert_eq!(m.read_u32(0), 0);
        assert_eq!(m.read_u8(12345), 0);
        m.write_u32(0x1000, 0x0102_0304);
        assert_eq!(m.read_u32(0x1000), 0x0102_0304);
        assert_eq!(m.read_u16(0x1000), 0x0304);
        assert_eq!(m.read_u16(0x1002), 0x0102);
        assert_eq!(m.read_u8(0x1003), 0x01);
    }

    #[test]
    fn page_boundary_bytes() {
        let mut m = Memory::new();
        m.write_u8(0x0FFF, 0xAA);
        m.write_u8(0x1000, 0xBB);
        assert_eq!(m.read_u8(0x0FFF), 0xAA);
        assert_eq!(m.read_u8(0x1000), 0xBB);
        assert_eq!(m.touched_pages(), 2);
    }

    #[test]
    fn amo_returns_old_value() {
        let mut m = Memory::new();
        m.write_u32(0x40, 10);
        assert_eq!(m.amo(AmoOp::Add, 0x40, 5), 10);
        assert_eq!(m.read_u32(0x40), 15);
        assert_eq!(m.amo(AmoOp::Xchg, 0x40, 99), 15);
        assert_eq!(m.read_u32(0x40), 99);
        assert_eq!(m.amo(AmoOp::Min, 0x40, -1i32 as u32), 99);
        assert_eq!(m.read_u32(0x40), -1i32 as u32);
    }

    #[test]
    fn bulk_words() {
        let mut m = Memory::new();
        m.write_words(0x100, &[1, 2, 3, 4]);
        assert_eq!(m.read_words(0x100, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_word_panics() {
        Memory::new().read_u32(2);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_half_panics() {
        Memory::new().read_u16(1);
    }
}
