//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of cycles per
//! lookup, which is pure overhead for the simulator's small integer keys
//! (page numbers, pcs, iteration indices). This is the classic
//! multiply-rotate "Fx" construction used by rustc: one rotate, one xor,
//! one multiply per word. It is also *stable* — no per-process random
//! state — which keeps simulation behavior identical across runs,
//! processes, and worker threads.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher (rustc's FxHasher construction).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |v: u32| {
            let mut h = FxHasher::default();
            h.write_u32(v);
            h.finish()
        };
        assert_eq!(hash(0xDEAD_BEEF), hash(0xDEAD_BEEF));
        assert_ne!(hash(1), hash(2));
    }

    #[test]
    fn byte_stream_matches_padding_rules() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0, 0, 0, 0]);
        // Short tails are zero-padded into one word, so these coincide by
        // construction (fine for trusted fixed-width keys).
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u32, u64> = FxHashMap::default();
        m.insert(7, 70);
        assert_eq!(m.get(&7), Some(&70));
        let mut s: FxHashSet<(i64, u8)> = FxHashSet::default();
        assert!(s.insert((-1, 3)));
        assert!(s.contains(&(-1, 3)));
    }
}
