/// Configuration of a timing-only cache model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Latency of a hit, in cycles.
    pub hit_cycles: u32,
    /// Additional latency of a miss (refill from next level), in cycles.
    pub miss_cycles: u32,
}

impl CacheConfig {
    /// The paper's L1 configuration: 16 KB, 4-way, 64 B lines, 1-cycle hit,
    /// 20-cycle miss penalty.
    pub fn l1_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 64,
            ways: 4,
            hit_cycles: 1,
            miss_cycles: 20,
        }
    }
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig::l1_default()
    }
}

/// Access statistics of a [`Cache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss rate in `[0, 1]`; zero if there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses() as f64 / total as f64
        }
    }
}

/// A timing-only set-associative cache with true-LRU replacement.
///
/// The cache tracks tags and recency but no data: architectural data always
/// lives in [`crate::Memory`]. An access returns its latency in cycles;
/// write misses allocate (write-allocate, write-back timing assumption).
///
/// ```
/// use xloops_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::l1_default());
/// assert_eq!(c.access(0x1000, false), 21); // cold miss: 1 + 20
/// assert_eq!(c.access(0x1004, false), 1);  // same line: hit
/// assert_eq!(c.stats().misses(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
    /// `log2(line_bytes)`, so the hot path shifts instead of dividing.
    line_shift: u32,
    /// `log2(sets.len())`.
    set_shift: u32,
    /// Completion time of the latest outstanding refill (see
    /// [`access_at`](Cache::access_at) / [`next_event`](Cache::next_event)).
    refill_done: u64,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u32,
    last_use: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// line size, capacity not divisible by `line_bytes × ways`).
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(config.ways > 0 && config.size_bytes > 0);
        let lines = config.size_bytes / config.line_bytes;
        assert!(lines.is_multiple_of(config.ways), "capacity not divisible into sets");
        let num_sets = (lines / config.ways) as usize;
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            config,
            sets: vec![Vec::new(); num_sets],
            stats: CacheStats::default(),
            tick: 0,
            line_shift: config.line_bytes.trailing_zeros(),
            set_shift: num_sets.trailing_zeros(),
            refill_done: 0,
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Simulates one access, returning its latency in cycles and updating
    /// the hit/miss statistics.
    #[inline]
    pub fn access(&mut self, addr: u32, is_write: bool) -> u32 {
        self.tick += 1;
        let line_addr = addr >> self.line_shift;
        let set_idx = (line_addr as usize) & (self.sets.len() - 1);
        let tag = line_addr >> self.set_shift;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.last_use = self.tick;
            if is_write {
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            return self.config.hit_cycles;
        }

        // Miss: allocate, evicting LRU if the set is full.
        if set.len() == self.config.ways as usize {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("set is non-empty");
            set.swap_remove(lru);
        }
        set.push(Line { tag, last_use: self.tick });
        if is_write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }
        self.config.hit_cycles + self.config.miss_cycles
    }

    /// Like [`access`](Cache::access), but stamps the refill completion
    /// time of a miss (`now + latency`) so that [`next_event`] can report
    /// it to an event-driven scheduler. The returned latency is identical
    /// to what `access` would return for the same access sequence.
    ///
    /// [`next_event`]: Cache::next_event
    #[inline]
    pub fn access_at(&mut self, addr: u32, is_write: bool, now: u64) -> u32 {
        let lat = self.access(addr, is_write);
        if lat > self.config.hit_cycles {
            let done = now + lat as u64;
            if done > self.refill_done {
                self.refill_done = done;
            }
        }
        lat
    }

    /// The completion time of the latest outstanding refill, if it is
    /// still in the future of `now`. Event-driven schedulers include this
    /// in their wakeup computation instead of probing the cache per cycle;
    /// waking at (or before) this time is always safe because refills only
    /// extend register-ready times that the scheduler tracks anyway.
    #[inline]
    pub fn next_event(&self, now: u64) -> Option<u64> {
        (self.refill_done > now).then_some(self.refill_done)
    }

    /// Latency an access *would* have, without updating any state. Used by
    /// schedulers that need to peek before committing to an issue slot.
    #[inline]
    pub fn peek(&self, addr: u32) -> u32 {
        let line_addr = addr >> self.line_shift;
        let set_idx = (line_addr as usize) & (self.sets.len() - 1);
        let tag = line_addr >> self.set_shift;
        if self.sets[set_idx].iter().any(|l| l.tag == tag) {
            self.config.hit_cycles
        } else {
            self.config.hit_cycles + self.config.miss_cycles
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
        self.tick = 0;
        self.refill_done = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 16-byte lines = 64 bytes.
        Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 2,
            hit_cycles: 1,
            miss_cycles: 9,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0x00, false), 10);
        assert_eq!(c.access(0x0C, false), 1, "same line");
        assert_eq!(c.access(0x10, true), 10, "next line maps to other set");
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().write_misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line addresses even): 0x00, 0x40, 0x80.
        c.access(0x00, false);
        c.access(0x40, false);
        c.access(0x00, false); // touch 0x00 so 0x40 is LRU
        c.access(0x80, false); // evicts 0x40
        assert_eq!(c.access(0x00, false), 1, "0x00 survived");
        assert_eq!(c.access(0x40, false), 10, "0x40 was evicted");
    }

    #[test]
    fn peek_does_not_mutate() {
        let mut c = tiny();
        assert_eq!(c.peek(0x0), 10);
        assert_eq!(c.stats().accesses(), 0);
        c.access(0x0, false);
        assert_eq!(c.peek(0x0), 1);
        assert_eq!(c.stats().accesses(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0x0, false);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.access(0x0, false), 10, "cold again after reset");
    }

    #[test]
    fn access_at_tracks_refill_completion() {
        let mut c = tiny();
        assert_eq!(c.next_event(0), None);
        assert_eq!(c.access_at(0x00, false, 100), 10, "cold miss");
        assert_eq!(c.next_event(100), Some(110));
        assert_eq!(c.next_event(110), None, "refill done by then");
        assert_eq!(c.access_at(0x0C, false, 105), 1, "hit leaves no event");
        assert_eq!(c.next_event(100), Some(110));
        c.reset();
        assert_eq!(c.next_event(0), None);
    }

    #[test]
    fn default_geometry_is_sane() {
        let c = Cache::new(CacheConfig::l1_default());
        // 16KB / 64B = 256 lines / 4 ways = 64 sets.
        assert_eq!(c.sets.len(), 64);
    }

    #[test]
    fn miss_rate_is_zero_without_accesses() {
        // An untouched cache (e.g. a zero-cycle or fully-specialized run)
        // must report 0.0, not NaN.
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        let s = CacheStats { read_hits: 3, read_misses: 1, ..CacheStats::default() };
        assert_eq!(s.miss_rate(), 0.25);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 12,
            ways: 2,
            hit_cycles: 1,
            miss_cycles: 9,
        });
    }
}
