//! Quickstart: assemble an XLOOPS kernel, run it traditionally and
//! specialized, and compare.
//!
//! This is Figure 1(a) of the paper — element-wise vector multiplication
//! encoded as an unordered-concurrent (`xloop.uc`) loop — executed on the
//! in-order GPP alone and then on the same GPP with the loop-pattern
//! specialization unit attached.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use xloops::asm::assemble;
use xloops::sim::{ExecMode, System, SystemConfig};

const N: u32 = 256;

fn source() -> String {
    format!(
        "
        li   r4, 0x10000    # a
        li   r5, 0x14000    # b
        li   r6, 0x18000    # c
        li   r2, 0          # i
        li   r3, {N}        # n
    loop:
        sll  r7, r2, 2
        addu r8, r4, r7
        lw   r9, 0(r8)
        addu r8, r5, r7
        lw   r10, 0(r8)
        mul  r9, r9, r10
        addu r8, r6, r7
        sw   r9, 0(r8)
        addiu r2, r2, 1
        xloop.uc loop, r2, r3
        exit"
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(&source())?;
    println!("assembled {} instructions\n", program.len());

    let mut results = Vec::new();
    for (config, mode, label) in [
        (SystemConfig::io(), ExecMode::Traditional, "io,    traditional"),
        (SystemConfig::io_x(), ExecMode::Specialized, "io+x,  specialized"),
        (SystemConfig::ooo2(), ExecMode::Traditional, "ooo/2, traditional"),
        (SystemConfig::ooo2_x(), ExecMode::Specialized, "ooo/2+x, specialized"),
    ] {
        let mut sys = System::new(config);
        for i in 0..N {
            sys.store_word(0x10000 + 4 * i, i);
            sys.store_word(0x14000 + 4 * i, i + 3);
        }
        let stats = sys.run(&program, mode)?;

        // Verify the result no matter which engine ran the loop.
        for i in 0..N {
            assert_eq!(sys.load_word(0x18000 + 4 * i), i * (i + 3), "c[{i}]");
        }
        println!(
            "{label:22} {:>7} cycles  {:>6.2} IPC  {:>9.1} nJ",
            stats.cycles,
            stats.ipc(),
            stats.energy_nj
        );
        results.push(stats.cycles);
    }

    println!(
        "\nspecialized speedup on io: {:.2}x   on ooo/2: {:.2}x",
        results[0] as f64 / results[1] as f64,
        results[2] as f64 / results[3] as f64
    );
    Ok(())
}
