//! A two-stage image pipeline mixing dependence patterns.
//!
//! Stage 1 is colour-space conversion (`xloop.uc`, fully parallel); stage 2
//! is error-diffusion dithering of the luminance-ish K channel
//! (`xloop.or`, a serial error chain carried through a cross-iteration
//! register). Both stages live in ONE binary with two xloops; the LPSU
//! specializes each as it is reached, and the `or` stage demonstrates the
//! CIR forwarding path.
//!
//! ```text
//! cargo run --example image_pipeline --release
//! ```

use xloops::asm::assemble;
use xloops::sim::{ExecMode, System, SystemConfig};

const W: u32 = 64;
const H: u32 = 16;
const N: u32 = W * H;

fn source() -> String {
    format!(
        "
        li r4, 0x10000     # R plane
        li r5, 0x11000     # G plane
        li r6, 0x12000     # B plane
        li r7, 0x13000     # K plane (stage 1 output)
        li r2, 0
        li r3, {N}
    cmyk:
        addu r11, r4, r2
        lbu r12, 0(r11)
        addu r11, r5, r2
        lbu r13, 0(r11)
        addu r11, r6, r2
        lbu r14, 0(r11)
        move r15, r12
        bge r15, r13, m1
        move r15, r13
    m1:
        bge r15, r14, m2
        move r15, r14
    m2:
        li r16, 255
        subu r17, r16, r15
        addu r11, r7, r2
        sb r17, 0(r11)
        addiu r2, r2, 1
        xloop.uc cmyk, r2, r3

        # Stage 2: dither the K plane (error carried in r9, reset per row).
        li r5, 0x14000     # dithered output
        li r9, 0
        li r2, 0
        li r3, {N}
    dith:
        andi r11, r2, {wmask}
        sltu r11, r0, r11
        subu r11, r0, r11
        and r9, r9, r11
        addu r11, r7, r2
        lbu r12, 0(r11)
        addu r12, r12, r9
        li r13, 0
        li r14, 127
        ble r12, r14, dark
        li r13, 255
    dark:
        addu r15, r5, r2
        sb r13, 0(r15)
        beqz r13, keep
        addiu r12, r12, -255
    keep:
        move r9, r12
        addiu r2, r2, 1
        xloop.or dith, r2, r3
        exit",
        wmask = W - 1
    )
}

/// Host-side golden model of both stages.
fn reference(r: &[u8], g: &[u8], b: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let k: Vec<u8> = (0..N as usize).map(|i| 255 - r[i].max(g[i]).max(b[i])).collect();
    let mut out = vec![0u8; N as usize];
    for y in 0..H as usize {
        let mut err = 0i32;
        for x in 0..W as usize {
            let i = y * W as usize + x;
            let v = k[i] as i32 + err;
            if v > 127 {
                out[i] = 255;
                err = v - 255;
            } else {
                out[i] = 0;
                err = v;
            }
        }
    }
    (k, out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(&source())?;

    // A synthetic gradient image with deterministic noise.
    let pix = |i: u32, ch: u32| (((i * (3 + ch)) ^ (i >> 3)) % 256) as u8;
    let r: Vec<u8> = (0..N).map(|i| pix(i, 0)).collect();
    let g: Vec<u8> = (0..N).map(|i| pix(i, 1)).collect();
    let b: Vec<u8> = (0..N).map(|i| pix(i, 2)).collect();
    let (k_ref, out_ref) = reference(&r, &g, &b);

    for (config, mode) in [
        (SystemConfig::io(), ExecMode::Traditional),
        (SystemConfig::io_x(), ExecMode::Specialized),
        (SystemConfig::ooo4(), ExecMode::Traditional),
        (SystemConfig::ooo4_x(), ExecMode::Adaptive),
    ] {
        let mut sys = System::new(config);
        for i in 0..N {
            sys.mem_mut().write_u8(0x10000 + i, r[i as usize]);
            sys.mem_mut().write_u8(0x11000 + i, g[i as usize]);
            sys.mem_mut().write_u8(0x12000 + i, b[i as usize]);
        }
        let stats = sys.run(&program, mode)?;
        for i in 0..N {
            assert_eq!(sys.mem().read_u8(0x13000 + i), k_ref[i as usize], "k[{i}]");
            assert_eq!(sys.mem().read_u8(0x14000 + i), out_ref[i as usize], "out[{i}]");
        }
        println!(
            "{:8} {:?}: {:>7} cycles, {:>2} xloops specialized, \
             {:>4} CIR transfers, {:>8.1} nJ",
            sys.config().name(),
            mode,
            stats.cycles,
            stats.xloops_specialized,
            stats.lpsu.cir_transfers,
            stats.energy_nj,
        );
    }
    println!("\nboth stages verified against the host-side golden model");
    Ok(())
}
