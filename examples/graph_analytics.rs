//! Graph analytics with a dynamically-growing worklist.
//!
//! Runs the `bfs-uc-db` kernel — the Figure 1(e) pattern: iterations
//! reserve worklist slots with `amo.add` and monotonically raise the loop
//! bound — across every system configuration and execution mode, and shows
//! how the `.db` control-dependence pattern lets the LPSU exploit the
//! irregular parallelism that out-of-order cores cannot.
//!
//! ```text
//! cargo run --example graph_analytics --release
//! ```

use xloops::kernels::by_name;
use xloops::sim::{ExecMode, System, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = by_name("bfs-uc-db").expect("kernel registry contains bfs");
    println!("kernel: {} ({} static instructions)\n", kernel.name, kernel.program.len());

    let mut baseline_io = 0u64;
    for (config, mode) in [
        (SystemConfig::io(), ExecMode::Traditional),
        (SystemConfig::ooo2(), ExecMode::Traditional),
        (SystemConfig::ooo4(), ExecMode::Traditional),
        (SystemConfig::io_x(), ExecMode::Specialized),
        (SystemConfig::ooo2_x(), ExecMode::Specialized),
        (SystemConfig::ooo4_x(), ExecMode::Specialized),
        (SystemConfig::ooo4_x(), ExecMode::Adaptive),
    ] {
        let mut sys = System::new(config);
        kernel.init_memory(sys.mem_mut());
        let stats = sys.run(&kernel.program, mode)?;
        kernel.verify(sys.mem()).map_err(std::io::Error::other)?;

        if baseline_io == 0 {
            baseline_io = stats.cycles;
        }
        let mode_tag = match mode {
            ExecMode::Traditional => "T",
            ExecMode::Specialized => "S",
            ExecMode::Adaptive => "A",
        };
        println!(
            "{:8} [{mode_tag}]  {:>7} cycles  speedup vs io {:>5.2}x  \
             lpsu iters {:>4}  squashes {:>3}",
            config.name(),
            stats.cycles,
            baseline_io as f64 / stats.cycles as f64,
            stats.lpsu.iterations,
            stats.lpsu.squashed_iters,
        );
    }

    // Show the dynamic-bound behaviour: the worklist grew beyond its seed.
    let mut sys = System::new(SystemConfig::io_x());
    kernel.init_memory(sys.mem_mut());
    sys.run(&kernel.program, ExecMode::Specialized)?;
    let final_tail = sys.load_word(0x6000);
    println!(
        "\nworklist grew from 1 seed entry to {final_tail} processed entries \
         (bound raised {} times by the iterations themselves)",
        final_tail - 1
    );
    Ok(())
}
