//! The compiler path: annotated loop IR → dependence analysis → xloop
//! selection → strength reduction → assembly → specialized execution.
//!
//! This walks the Section II-B toolchain end to end for a prefix-scaled
//! sum: the programmer only says `ordered`; the analyses discover that the
//! dependence is a register (the accumulator), pick `xloop.or`, and plan a
//! cross-iteration (`xi`) pointer for the streaming access.
//!
//! ```text
//! cargo run --example compile_loop --release
//! ```

use xloops::asm::assemble;
use xloops::compiler::analysis::select_pattern;
use xloops::compiler::codegen::{lower_loop, CodegenCtx};
use xloops::compiler::ir::{Annotation, ArrayRef, Bound, Expr, Loop, Stmt, Subscript};
use xloops::compiler::strength::plan_xi;
use xloops::sim::{ExecMode, System, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // for (i = 0; i < 96; i++) { t = a[i]; sum = sum + 3*t; out[i] = sum; }
    // annotated: #pragma xloops ordered
    let mut l = Loop::new("i", Bound::Fixed(Expr::konst(96)), Annotation::Ordered);
    l.body.push(Stmt::load("t", ArrayRef::new("a", Subscript::linear(1, 0))));
    l.body.push(Stmt::assign(
        "sum",
        Expr::add(Expr::var("sum"), Expr::mul(Expr::konst(3), Expr::var("t"))),
    ));
    l.body.push(Stmt::store(ArrayRef::new("out", Subscript::linear(1, 0)), Expr::var("sum")));

    // 1. Pattern selection.
    let choice = select_pattern(&l);
    println!("annotation: ordered");
    println!("analysis:   CIRs = {:?}, memory deps = {:?}", choice.cirs, choice.mem_deps);
    println!("selected:   xloop.{}\n", choice.pattern);

    // 2. Strength reduction plans.
    let plans = plan_xi(&l);
    for p in &plans {
        println!("xi plan:    {} steps {} bytes/iteration", p.array, p.step_bytes);
    }

    // 3. Code generation.
    let ctx = CodegenCtx {
        arrays: vec![("a".into(), 0x10000), ("out".into(), 0x20000)],
        scalars: vec![("sum".into(), 0)],
        outputs: vec![("sum".into(), 0x30000)],
        use_xi: true,
    };
    let asm = lower_loop(&l, &ctx)?;
    println!("\ngenerated assembly:\n{asm}");

    // 4. Execute specialized and verify.
    let program = assemble(&asm)?;
    let mut sys = System::new(SystemConfig::io_x());
    let mut expect = 0u32;
    let mut expected_out = Vec::new();
    for i in 0..96u32 {
        sys.store_word(0x10000 + 4 * i, i + 1);
        expect = expect.wrapping_add(3 * (i + 1));
        expected_out.push(expect);
    }
    let stats = sys.run(&program, ExecMode::Specialized)?;
    for (i, &want) in expected_out.iter().enumerate() {
        assert_eq!(sys.load_word(0x20000 + 4 * i as u32), want, "out[{i}]");
    }
    assert_eq!(sys.load_word(0x30000), expect, "CIR live-out");
    println!(
        "specialized execution: {} cycles, {} CIR transfers, {} xi computations — verified",
        stats.cycles, stats.lpsu.cir_transfers, stats.lpsu.xi_ops
    );
    Ok(())
}
