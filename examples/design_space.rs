//! LPSU design-space exploration with the area model in the loop.
//!
//! Sweeps lane count and shared resources for one compute-bound and one
//! memory-bound kernel, and reports performance per mm² — the
//! complexity-effectiveness argument of Sections IV-F and V.
//!
//! ```text
//! cargo run --example design_space --release
//! ```

use xloops::energy::{gpp_area_mm2, lpsu_area_mm2, lpsu_cycle_time_ns};
use xloops::kernels::by_name;
use xloops::lpsu::LpsuConfig;
use xloops::sim::{ExecMode, System, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sweep: Vec<(String, LpsuConfig)> = vec![
        ("x2".into(), LpsuConfig::default4().with_lanes(2)),
        ("x4".into(), LpsuConfig::default4()),
        ("x4+t".into(), LpsuConfig::default4().with_multithreading()),
        ("x6".into(), LpsuConfig::default4().with_lanes(6)),
        ("x8".into(), LpsuConfig::default4().with_lanes(8)),
        ("x8+r".into(), LpsuConfig::default4().with_lanes(8).with_double_resources()),
        (
            "x8+r+m".into(),
            LpsuConfig::default4().with_lanes(8).with_double_resources().with_big_lsq(),
        ),
    ];

    for name in ["viterbi-uc", "btree-ua"] {
        let kernel = by_name(name).expect("kernel exists");

        // Baseline: traditional execution on the plain in-order core.
        let mut base_sys = System::new(SystemConfig::io());
        kernel.init_memory(base_sys.mem_mut());
        let base = base_sys.run(&kernel.program, ExecMode::Traditional)?;

        println!("--- {name} (baseline io: {} cycles, 0.25 mm²) ---", base.cycles);
        println!(
            "{:8} {:>8} {:>8} {:>10} {:>9} {:>11}",
            "config", "cycles", "speedup", "area(mm²)", "CT(ns)", "perf/mm²"
        );
        for (label, lpsu) in &sweep {
            let mut sys = System::new(SystemConfig::io_x().with_lpsu(*lpsu));
            kernel.init_memory(sys.mem_mut());
            let stats = sys.run(&kernel.program, ExecMode::Specialized)?;
            kernel.verify(sys.mem()).map_err(std::io::Error::other)?;

            let speedup = base.cycles as f64 / stats.cycles as f64;
            let area = gpp_area_mm2() + lpsu_area_mm2(lpsu.ibuf_entries, lpsu.lanes);
            let ct = lpsu_cycle_time_ns(lpsu.ibuf_entries, lpsu.lanes);
            // Wall-clock performance folds the cycle-time penalty in.
            let wall_perf = speedup * (1.95 / ct);
            println!(
                "{label:8} {:>8} {:>7.2}x {:>10.2} {:>9.2} {:>11.2}",
                stats.cycles,
                speedup,
                area,
                ct,
                wall_perf / (area / gpp_area_mm2()),
            );
        }
        println!();
    }
    println!(
        "note: viterbi (compute-bound) keeps scaling with lanes and ports;\n\
         btree (speculation-bound) only moves when the LSQ grows — and the\n\
         cycle-time/area model shows where the extra silicon stops paying."
    );
    Ok(())
}
